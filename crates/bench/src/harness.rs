//! The canonical perf-trajectory bench harness (DESIGN.md §12).
//!
//! [`run_matrix`] runs a fixed seed × workload × engine matrix — TATP,
//! Smallbank, and YCSB-A/B over the hash table at two Zipfian skews,
//! each under all three protocol engines — and renders a schema-versioned
//! `BENCH_<id>.json` document. Because the simulator is deterministic,
//! re-running the same matrix at the same seed reproduces every sim-time
//! number bit-for-bit; only the `wall_ms` fields (host wall clock, off
//! with `wall_clock: false`) vary between machines. [`compare`] diffs two
//! such documents cell-by-cell and reports throughput/p99 regressions
//! beyond a threshold — the CI perf gate.

use hades_core::baseline::BaselineSim;
use hades_core::hades::HadesSim;
use hades_core::hades_h::HadesHSim;
use hades_core::runner::Protocol;
use hades_core::runtime::{Cluster, WorkloadSet};
use hades_core::stats::RunStats;
use hades_sim::config::{BatchingParams, SimConfig};
use hades_storage::db::Database;
use hades_storage::index::IndexKind;
use hades_telemetry::json::Json;
use hades_workloads::catalog::AppId;
use hades_workloads::spec::Workload;
use hades_workloads::ycsb::{Ycsb, YcsbConfig, YcsbVariant};

/// Schema tag stamped into every document this harness emits.
pub const SCHEMA: &str = "hades-bench/v1";

/// The canonical bench seed. Every committed `BENCH_*.json` uses it, so
/// any two baselines are directly comparable.
pub const DEFAULT_SEED: u64 = 0x4841_4445_5321_0001;

/// Time-series window used by `--timeseries` cells (sim time).
pub const TS_WINDOW_US: u64 = 100;

/// Default regression threshold for [`compare`]: 10%.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One workload column of the matrix: a catalog application or a YCSB
/// variant at an explicit Zipfian skew.
#[derive(Debug, Clone, Copy)]
pub enum BenchWorkload {
    /// A paper-catalog application, by label.
    App(&'static str),
    /// YCSB over the hash table at an explicit theta.
    YcsbTheta(YcsbVariant, f64),
}

impl BenchWorkload {
    /// Stable cell label (`"TATP"`, `"HT-wA@0.99"`, …).
    pub fn label(&self) -> String {
        match self {
            BenchWorkload::App(name) => (*name).to_string(),
            BenchWorkload::YcsbTheta(v, theta) => format!("HT-{}@{theta:.2}", v.label()),
        }
    }

    fn build(&self, db: &mut Database, scale: f64) -> Box<dyn Workload> {
        match self {
            BenchWorkload::App(name) => AppId::parse(name)
                .unwrap_or_else(|| panic!("unknown app label {name}"))
                .build(db, scale),
            BenchWorkload::YcsbTheta(v, theta) => Box::new(Ycsb::setup(
                db,
                YcsbConfig {
                    theta: *theta,
                    ..YcsbConfig::paper(IndexKind::HashTable, *v).scaled(scale)
                },
            )),
        }
    }
}

/// The canonical workload columns, in emission order.
pub const WORKLOADS: [BenchWorkload; 6] = [
    BenchWorkload::App("TATP"),
    BenchWorkload::App("Smallbank"),
    BenchWorkload::YcsbTheta(YcsbVariant::A, 0.99),
    BenchWorkload::YcsbTheta(YcsbVariant::A, 0.60),
    BenchWorkload::YcsbTheta(YcsbVariant::B, 0.99),
    BenchWorkload::YcsbTheta(YcsbVariant::B, 0.60),
];

/// Harness options (flag-for-flag what the `bench` binary accepts).
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// RNG seed shared by every cell.
    pub seed: u64,
    /// Smoke mode: reduced scale and measurement window.
    pub smoke: bool,
    /// Enable the phase profiler; each cell gains a `profile` block.
    pub profile: bool,
    /// Enable causal spans; each cell gains a `tail` block attributing
    /// the top-10 slowest committed transactions (DESIGN.md §13).
    pub tail: bool,
    /// Enable windowed time-series; each cell gains a `timeseries`
    /// block ([`TS_WINDOW`] sim-time windows).
    pub timeseries: bool,
    /// Record per-cell host wall-clock time (`wall_ms`). Off for
    /// byte-identity checks across runs.
    pub wall_clock: bool,
    /// Add batched duplicates of every matrix cell, running under
    /// adaptive doorbell coalescing capped at this batch size
    /// (DESIGN.md §14). Batched cells get a `+batch<n>` workload-label
    /// suffix, so they compare independently of the unbatched cells.
    pub batch: Option<u32>,
    /// Identifier baked into the document (`BENCH_<id>.json`).
    pub bench_id: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: DEFAULT_SEED,
            smoke: false,
            profile: false,
            tail: false,
            timeseries: false,
            wall_clock: true,
            batch: None,
            bench_id: "local".to_string(),
        }
    }
}

impl BenchConfig {
    /// (scale, warmup, measure) for this mode. The full mode is sized so
    /// the whole 18-cell matrix stays CI-affordable (~a minute).
    pub fn sizing(&self) -> (f64, u64, u64) {
        if self.smoke {
            (0.005, 50, 300)
        } else {
            (0.01, 200, 1_500)
        }
    }

    fn mode(&self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }
}

/// One finished cell.
#[derive(Debug)]
pub struct CellResult {
    /// Workload label.
    pub workload: String,
    /// Protocol engine.
    pub protocol: Protocol,
    /// Full run statistics (sim time).
    pub stats: RunStats,
    /// Host wall-clock milliseconds spent running the cell (0 when
    /// wall-clock capture is off).
    pub wall_ms: u64,
}

/// Runs one cell of the matrix.
pub fn run_cell(wl: &BenchWorkload, protocol: Protocol, bc: &BenchConfig) -> CellResult {
    run_cell_batched(wl, protocol, bc, None)
}

/// Runs one cell, optionally under adaptive doorbell coalescing capped
/// at `batch` verbs. Batched cells carry a `+batch<n>` label suffix.
pub fn run_cell_batched(
    wl: &BenchWorkload,
    protocol: Protocol,
    bc: &BenchConfig,
    batch: Option<u32>,
) -> CellResult {
    let (scale, warmup, measure) = bc.sizing();
    let mut cfg = SimConfig::isca_default().with_seed(bc.seed);
    if bc.profile {
        cfg = cfg.with_profiling();
    }
    if bc.tail {
        cfg = cfg.with_spans();
    }
    if bc.timeseries {
        cfg = cfg.with_timeseries(hades_sim::time::Cycles::from_micros(TS_WINDOW_US));
    }
    if let Some(n) = batch {
        cfg = cfg.with_batching(BatchingParams {
            max_batch: n,
            ..BatchingParams::standard()
        });
    }
    let mut db = Database::new(cfg.shape.nodes);
    let workload = wl.build(&mut db, scale);
    let ws = WorkloadSet::single(workload, cfg.shape.cores_per_node);
    let cl = Cluster::new(cfg, db);
    let started = std::time::Instant::now();
    let stats = match protocol {
        Protocol::Baseline => BaselineSim::new(cl, ws, warmup, measure).run(),
        Protocol::HadesH => HadesHSim::new(cl, ws, warmup, measure).run(),
        Protocol::Hades => HadesSim::new(cl, ws, warmup, measure).run(),
    };
    let wall_ms = if bc.wall_clock {
        started.elapsed().as_millis() as u64
    } else {
        0
    };
    let workload = match batch {
        Some(n) => format!("{}+batch{n}", wl.label()),
        None => wl.label(),
    };
    CellResult {
        workload,
        protocol,
        stats,
        wall_ms,
    }
}

/// Runs the full canonical matrix, reporting progress through `progress`
/// (one call per finished cell; pass `|_| {}` to silence).
pub fn run_matrix(bc: &BenchConfig, mut progress: impl FnMut(&CellResult)) -> Vec<CellResult> {
    let mut cells = Vec::with_capacity(WORKLOADS.len() * Protocol::ALL.len());
    for wl in &WORKLOADS {
        for protocol in Protocol::ALL {
            let cell = run_cell(wl, protocol, bc);
            progress(&cell);
            cells.push(cell);
        }
    }
    // Batched duplicates ride after the plain matrix so old baselines
    // (without batched cells) still compare clean against new documents.
    if let Some(n) = bc.batch {
        for wl in &WORKLOADS {
            for protocol in Protocol::ALL {
                let cell = run_cell_batched(wl, protocol, bc, Some(n));
                progress(&cell);
                cells.push(cell);
            }
        }
    }
    cells
}

fn cell_json(cell: &CellResult, bc: &BenchConfig) -> Json {
    let s = &cell.stats;
    let aborts = Json::Obj(
        s.abort_reasons()
            .map(|(label, n)| (label.to_string(), Json::UInt(n)))
            .collect(),
    );
    let verbs = Json::Obj(
        s.verbs
            .iter()
            .filter(|&(_, n)| n > 0)
            .map(|(v, n)| (v.label().to_string(), Json::UInt(n)))
            .collect(),
    );
    let mut b = Json::obj()
        .field("workload", cell.workload.as_str())
        .field("protocol", cell.protocol.label())
        .field("committed", s.committed)
        .field("throughput_txn_s", s.throughput())
        .field("p50_us", s.p50_latency().as_micros())
        .field("p99_us", s.p99_latency().as_micros())
        .field("p999_us", s.p999_latency().as_micros())
        .field("abort_rate", s.abort_rate())
        .field("aborts", aborts)
        .field("verbs", verbs);
    if let Some(profile) = &s.profile {
        b = b.field("profile", profile.to_json());
    }
    if let Some(spans) = &s.spans {
        b = b.field("tail", spans.tail_json(10));
    }
    if let Some(ts) = &s.timeseries {
        b = b.field("timeseries", ts.to_json());
    }
    if let Some(bt) = &s.batching {
        b = b.field("batching", bt.to_json());
    }
    if bc.wall_clock {
        b = b.field("wall_ms", cell.wall_ms);
    }
    b.build()
}

/// Renders a finished matrix as the schema-versioned bench document.
pub fn matrix_json(cells: &[CellResult], bc: &BenchConfig) -> Json {
    let (scale, warmup, measure) = bc.sizing();
    let mut config = Json::obj()
        .field("scale", scale)
        .field("warmup", warmup)
        .field("measure", measure);
    if let Some(n) = bc.batch {
        config = config.field("batch", u64::from(n));
    }
    let config = config.build();
    Json::obj()
        .field("schema", SCHEMA)
        .field("bench_id", bc.bench_id.as_str())
        .field("seed", bc.seed)
        .field("mode", bc.mode())
        .field("config", config)
        .field(
            "cells",
            Json::Arr(cells.iter().map(|c| cell_json(c, bc)).collect()),
        )
        .build()
}

/// The outcome of comparing two bench documents.
#[derive(Debug, Default)]
pub struct Comparison {
    /// One human-readable line per compared cell.
    pub lines: Vec<String>,
    /// Regressions beyond the threshold (empty ⇒ gate passes).
    pub regressions: Vec<String>,
}

fn cell_key(cell: &Json) -> Option<(String, String)> {
    Some((
        cell.get("workload")?.as_str()?.to_string(),
        cell.get("protocol")?.as_str()?.to_string(),
    ))
}

fn num(cell: &Json, field: &str) -> Option<f64> {
    cell.get(field)?.as_f64()
}

/// Compares `new` against the `old` baseline. A regression is a cell
/// whose throughput dropped, or whose p99 latency rose, by more than
/// `threshold` (fraction, e.g. `0.10`). Structural mismatches (schema,
/// mode, missing cells) are regressions too: they mean the documents are
/// not measuring the same thing.
pub fn compare(old: &Json, new: &Json, threshold: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for (doc, label) in [(old, "baseline"), (new, "candidate")] {
        if doc.get("schema").and_then(|s| s.as_str()) != Some(SCHEMA) {
            cmp.regressions
                .push(format!("{label} document schema is not {SCHEMA}"));
        }
    }
    if !cmp.regressions.is_empty() {
        return cmp;
    }
    let old_mode = old.get("mode").and_then(|m| m.as_str()).unwrap_or("?");
    let new_mode = new.get("mode").and_then(|m| m.as_str()).unwrap_or("?");
    if old_mode != new_mode {
        cmp.regressions.push(format!(
            "mode mismatch: baseline ran '{old_mode}', candidate ran '{new_mode}'"
        ));
        return cmp;
    }
    if old.get("seed").and_then(|s| s.as_u64()) != new.get("seed").and_then(|s| s.as_u64()) {
        cmp.regressions
            .push("seed mismatch: documents are not comparable".to_string());
        return cmp;
    }
    let empty: Vec<Json> = Vec::new();
    let old_cells = old.get("cells").and_then(|c| c.as_arr()).unwrap_or(&empty);
    let new_cells = new.get("cells").and_then(|c| c.as_arr()).unwrap_or(&empty);
    for old_cell in old_cells {
        let Some(key) = cell_key(old_cell) else {
            cmp.regressions
                .push("baseline cell missing key".to_string());
            continue;
        };
        let label = format!("{} / {}", key.0, key.1);
        let Some(new_cell) = new_cells
            .iter()
            .find(|c| cell_key(c).as_ref() == Some(&key))
        else {
            cmp.regressions
                .push(format!("{label}: cell missing from candidate"));
            continue;
        };
        let (Some(t_old), Some(t_new)) = (
            num(old_cell, "throughput_txn_s"),
            num(new_cell, "throughput_txn_s"),
        ) else {
            cmp.regressions.push(format!("{label}: missing throughput"));
            continue;
        };
        let (Some(p_old), Some(p_new)) = (num(old_cell, "p99_us"), num(new_cell, "p99_us")) else {
            cmp.regressions.push(format!("{label}: missing p99"));
            continue;
        };
        let t_delta = if t_old > 0.0 {
            t_new / t_old - 1.0
        } else {
            0.0
        };
        let p_delta = if p_old > 0.0 {
            p_new / p_old - 1.0
        } else {
            0.0
        };
        cmp.lines.push(format!(
            "{label}: throughput {t_old:.0} -> {t_new:.0} txn/s ({:+.1}%), p99 {p_old:.1} -> {p_new:.1} us ({:+.1}%)",
            t_delta * 100.0,
            p_delta * 100.0,
        ));
        if t_new < t_old * (1.0 - threshold) {
            cmp.regressions.push(format!(
                "{label}: throughput regressed {:.1}% (limit {:.0}%)",
                -t_delta * 100.0,
                threshold * 100.0
            ));
        }
        if p_new > p_old * (1.0 + threshold) {
            cmp.regressions.push(format!(
                "{label}: p99 latency regressed {:+.1}% (limit {:.0}%)",
                p_delta * 100.0,
                threshold * 100.0
            ));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(throughput: f64, p99: f64) -> Json {
        Json::parse(&format!(
            r#"{{"schema":"hades-bench/v1","bench_id":"t","seed":1,"mode":"smoke",
                "config":{{"scale":0.005,"warmup":50,"measure":300}},
                "cells":[{{"workload":"TATP","protocol":"HADES",
                "committed":300,"throughput_txn_s":{throughput},"p50_us":10.0,
                "p99_us":{p99},"p999_us":40.0,"abort_rate":0.01,
                "aborts":{{}},"verbs":{{}},"wall_ms":5}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn self_compare_is_clean() {
        let d = doc(100_000.0, 25.0);
        let cmp = compare(&d, &d, DEFAULT_THRESHOLD);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert_eq!(cmp.lines.len(), 1);
    }

    #[test]
    fn throughput_drop_beyond_threshold_regresses() {
        let cmp = compare(&doc(100_000.0, 25.0), &doc(85_000.0, 25.0), 0.10);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("throughput regressed"));
        // 8% stays within a 10% gate.
        let ok = compare(&doc(100_000.0, 25.0), &doc(92_000.0, 25.0), 0.10);
        assert!(ok.regressions.is_empty());
    }

    #[test]
    fn p99_rise_beyond_threshold_regresses() {
        let cmp = compare(&doc(100_000.0, 25.0), &doc(100_000.0, 30.0), 0.10);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("p99"));
    }

    #[test]
    fn structural_mismatches_regress() {
        let d = doc(100_000.0, 25.0);
        let mut other = doc(100_000.0, 25.0);
        if let Json::Obj(members) = &mut other {
            for (k, v) in members.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("full".to_string());
                }
            }
        }
        let cmp = compare(&d, &other, 0.10);
        assert!(cmp.regressions.iter().any(|r| r.contains("mode mismatch")));
        let missing = Json::parse(
            r#"{"schema":"hades-bench/v1","bench_id":"t","seed":1,"mode":"smoke","cells":[]}"#,
        )
        .unwrap();
        let cmp = compare(&d, &missing, 0.10);
        assert!(cmp.regressions.iter().any(|r| r.contains("missing")));
    }

    #[test]
    fn workload_labels_are_stable() {
        assert_eq!(WORKLOADS[0].label(), "TATP");
        assert_eq!(WORKLOADS[2].label(), "HT-wA@0.99");
        assert_eq!(WORKLOADS[5].label(), "HT-wB@0.60");
    }
}
