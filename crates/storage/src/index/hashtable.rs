//! Open-addressing hash table with linear probing ("HT" in the paper).

use super::{IndexKind, KvIndex, Lookup};
use crate::record::RecordId;

const INITIAL_CAPACITY: usize = 16;
const MAX_LOAD_PERCENT: usize = 70;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    /// A removed entry: probes continue past it, inserts may reuse it.
    Tombstone,
    Occupied {
        key: u64,
        rid: RecordId,
    },
}

/// An open-addressing hash table over `u64` keys with linear probing and
/// power-of-two capacity. Lookup depth is the probe count.
///
/// # Examples
///
/// ```
/// use hades_storage::index::{HashTable, KvIndex};
/// use hades_storage::record::RecordId;
///
/// let mut ht = HashTable::new();
/// ht.insert(17, RecordId(3));
/// let hit = ht.get(17).unwrap();
/// assert_eq!(hit.rid, RecordId(3));
/// assert!(hit.depth >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct HashTable {
    slots: Vec<Slot>,
    len: usize,
    tombstones: usize,
}

fn mix(key: u64) -> u64 {
    // Fibonacci hashing with an avalanche pass.
    let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

impl HashTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        HashTable {
            slots: vec![Slot::Empty; INITIAL_CAPACITY],
            len: 0,
            tombstones: 0,
        }
    }

    /// Current slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Rehashes into `capacity` slots, dropping tombstones.
    fn rehash(&mut self, capacity: usize) {
        let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; capacity]);
        self.len = 0;
        self.tombstones = 0;
        for slot in old {
            if let Slot::Occupied { key, rid } = slot {
                self.insert(key, rid);
            }
        }
    }

    fn grow(&mut self) {
        self.rehash(self.slots.len() * 2);
    }
}

impl Default for HashTable {
    fn default() -> Self {
        Self::new()
    }
}

impl KvIndex for HashTable {
    fn insert(&mut self, key: u64, rid: RecordId) -> Option<RecordId> {
        if (self.len + self.tombstones + 1) * 100 > self.slots.len() * MAX_LOAD_PERCENT {
            // Growing also sweeps tombstones; if live entries alone are
            // under half the load budget, rehash at the same size instead.
            if self.len * 100 * 2 <= self.slots.len() * MAX_LOAD_PERCENT {
                self.rehash(self.slots.len());
            } else {
                self.grow();
            }
        }
        let mut i = mix(key) as usize & self.mask();
        let mut first_tombstone: Option<usize> = None;
        loop {
            match self.slots[i] {
                Slot::Empty => {
                    // Prefer reusing a tombstone seen on the way.
                    let target = first_tombstone.unwrap_or(i);
                    if self.slots[target] == Slot::Tombstone {
                        self.tombstones -= 1;
                    }
                    self.slots[target] = Slot::Occupied { key, rid };
                    self.len += 1;
                    return None;
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                    i = (i + 1) & self.mask();
                }
                Slot::Occupied { key: k, rid: old } if k == key => {
                    self.slots[i] = Slot::Occupied { key, rid };
                    return Some(old);
                }
                Slot::Occupied { .. } => i = (i + 1) & self.mask(),
            }
        }
    }

    fn get(&self, key: u64) -> Option<Lookup> {
        let mut i = mix(key) as usize & self.mask();
        let mut depth = 1;
        loop {
            match self.slots[i] {
                Slot::Empty => return None,
                Slot::Occupied { key: k, rid } if k == key => return Some(Lookup { rid, depth }),
                Slot::Occupied { .. } | Slot::Tombstone => {
                    i = (i + 1) & self.mask();
                    depth += 1;
                }
            }
        }
    }

    fn remove(&mut self, key: u64) -> Option<RecordId> {
        let mut i = mix(key) as usize & self.mask();
        loop {
            match self.slots[i] {
                Slot::Empty => return None,
                Slot::Occupied { key: k, rid } if k == key => {
                    self.slots[i] = Slot::Tombstone;
                    self.len -= 1;
                    self.tombstones += 1;
                    return Some(rid);
                }
                Slot::Occupied { .. } | Slot::Tombstone => i = (i + 1) & self.mask(),
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> IndexKind {
        IndexKind::HashTable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::conformance;

    #[test]
    fn conforms() {
        conformance::insert_get_roundtrip(&mut HashTable::new());
        conformance::overwrite_returns_old(&mut HashTable::new());
        conformance::handles_adversarial_keys(&mut HashTable::new());
        conformance::remove_roundtrip(&mut HashTable::new());
    }

    #[test]
    fn differential_fuzz_vs_std() {
        conformance::differential_fuzz(&mut HashTable::new(), 0xDEAD);
    }

    #[test]
    fn tombstone_churn_does_not_bloat_capacity() {
        // Insert/remove cycles over a fixed working set must not grow the
        // table without bound (tombstones get swept by same-size rehash).
        let mut ht = HashTable::new();
        for round in 0..200u64 {
            for k in 0..64u64 {
                ht.insert(round * 64 + k, RecordId(k as u32));
            }
            for k in 0..64u64 {
                assert!(ht.remove(round * 64 + k).is_some());
            }
        }
        assert_eq!(ht.len(), 0);
        assert!(
            ht.capacity() <= 1024,
            "capacity bloated to {}",
            ht.capacity()
        );
    }

    #[test]
    fn grows_past_load_factor() {
        let mut ht = HashTable::new();
        for k in 0..10_000u64 {
            ht.insert(k, RecordId(k as u32));
        }
        assert_eq!(ht.len(), 10_000);
        assert!(ht.capacity() >= 10_000 * 100 / MAX_LOAD_PERCENT);
        for k in 0..10_000u64 {
            assert_eq!(ht.get(k).unwrap().rid, RecordId(k as u32));
        }
    }

    #[test]
    fn probe_depth_is_short_on_average() {
        let mut ht = HashTable::new();
        for k in 0..50_000u64 {
            ht.insert(k.wrapping_mul(0x1234_5679), RecordId(k as u32));
        }
        let total: u64 = (0..50_000u64)
            .map(|k| ht.get(k.wrapping_mul(0x1234_5679)).unwrap().depth as u64)
            .sum();
        let avg = total as f64 / 50_000.0;
        assert!(avg < 2.5, "average probe depth {avg} too deep");
    }
}
