//! A deterministic skip list — the paper's ordered "Map" store.

use super::{IndexKind, KvIndex, Lookup};
use crate::record::RecordId;

const MAX_LEVEL: usize = 24;

#[derive(Debug)]
struct Node {
    key: u64,
    rid: RecordId,
    /// `next[l]` is the index of the next node at level `l`.
    next: Vec<Option<usize>>,
}

/// A skip list over `u64` keys with arena-allocated nodes and a
/// deterministic (hash-derived) level generator, so structure and lookup
/// depths are reproducible across runs.
///
/// # Examples
///
/// ```
/// use hades_storage::index::{KvIndex, SkipList};
/// use hades_storage::record::RecordId;
///
/// let mut m = SkipList::new();
/// m.insert(5, RecordId(0));
/// m.insert(1, RecordId(1));
/// assert_eq!(m.get(1).unwrap().rid, RecordId(1));
/// assert_eq!(m.iter_keys().collect::<Vec<_>>(), vec![1, 5]);
/// ```
#[derive(Debug)]
pub struct SkipList {
    nodes: Vec<Node>,
    /// Head forward pointers per level.
    head: Vec<Option<usize>>,
    /// Arena slots freed by removals, ready for reuse.
    free: Vec<usize>,
    level: usize,
    len: usize,
}

fn level_for(key: u64) -> usize {
    // Geometric(1/2) level derived from a hash of the key: deterministic,
    // independent of insertion order.
    let mut h = key.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 32;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 32;
    (h.trailing_ones() as usize + 1).min(MAX_LEVEL)
}

impl SkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        SkipList {
            nodes: Vec::new(),
            head: vec![None; MAX_LEVEL],
            free: Vec::new(),
            level: 1,
            len: 0,
        }
    }

    /// Arena capacity in nodes (diagnostics; stays bounded under
    /// insert/remove churn thanks to the free list).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over keys in ascending order.
    pub fn iter_keys(&self) -> impl Iterator<Item = u64> + '_ {
        let mut cur = self.head[0];
        std::iter::from_fn(move || {
            let i = cur?;
            cur = self.nodes[i].next[0];
            Some(self.nodes[i].key)
        })
    }

    /// Finds the update path for `key`: for each level, the last node whose
    /// key is `< key` (or `None` for head). Returns (path, steps walked).
    fn find_path(&self, key: u64) -> ([Option<usize>; MAX_LEVEL], u32) {
        let mut path = [None; MAX_LEVEL];
        let mut steps = 0u32;
        let mut cur: Option<usize> = None; // None = head
        for l in (0..self.level).rev() {
            loop {
                let next = match cur {
                    None => self.head[l],
                    Some(i) => self.nodes[i].next[l],
                };
                match next {
                    Some(n) if self.nodes[n].key < key => {
                        cur = Some(n);
                        steps += 1;
                    }
                    _ => break,
                }
            }
            steps += 1; // one comparison per level descended
            path[l] = cur;
        }
        (path, steps)
    }
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl KvIndex for SkipList {
    fn insert(&mut self, key: u64, rid: RecordId) -> Option<RecordId> {
        let (path, _) = self.find_path(key);
        // Existing key?
        let at_level0 = match path[0] {
            None => self.head[0],
            Some(i) => self.nodes[i].next[0],
        };
        if let Some(n) = at_level0 {
            if self.nodes[n].key == key {
                let old = self.nodes[n].rid;
                self.nodes[n].rid = rid;
                return Some(old);
            }
        }
        let lvl = level_for(key);
        if lvl > self.level {
            self.level = lvl;
        }
        let mut next = vec![None; lvl];
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.nodes.push(Node {
                    key: 0,
                    rid,
                    next: Vec::new(),
                });
                self.nodes.len() - 1
            }
        };
        #[allow(clippy::needless_range_loop)]
        for l in 0..lvl {
            let pred = path[l];
            next[l] = match pred {
                None => self.head[l],
                Some(p) => self.nodes[p].next[l],
            };
            match pred {
                None => self.head[l] = Some(idx),
                Some(p) => self.nodes[p].next[l] = Some(idx),
            }
        }
        self.nodes[idx] = Node { key, rid, next };
        self.len += 1;
        None
    }

    fn remove(&mut self, key: u64) -> Option<RecordId> {
        let (path, _) = self.find_path(key);
        let target = match path[0] {
            None => self.head[0],
            Some(i) => self.nodes[i].next[0],
        }?;
        if self.nodes[target].key != key {
            return None;
        }
        // Unlink at every level where a predecessor points at the target;
        // the freed arena slot is recycled by later inserts.
        #[allow(clippy::needless_range_loop)] // `path[l]` and `head[l]` pair up
        for l in 0..self.level {
            let next_at = match path[l] {
                None => self.head[l],
                Some(p) => self.nodes[p].next[l],
            };
            if next_at == Some(target) {
                let skip = self.nodes[target].next.get(l).copied().flatten();
                match path[l] {
                    None => self.head[l] = skip,
                    Some(p) => self.nodes[p].next[l] = skip,
                }
            }
        }
        self.len -= 1;
        let rid = self.nodes[target].rid;
        self.free.push(target);
        Some(rid)
    }

    fn get(&self, key: u64) -> Option<Lookup> {
        let (path, steps) = self.find_path(key);
        let candidate = match path[0] {
            None => self.head[0],
            Some(i) => self.nodes[i].next[0],
        }?;
        if self.nodes[candidate].key == key {
            Some(Lookup {
                rid: self.nodes[candidate].rid,
                depth: steps.max(1),
            })
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::conformance;

    #[test]
    fn conforms() {
        conformance::insert_get_roundtrip(&mut SkipList::new());
        conformance::overwrite_returns_old(&mut SkipList::new());
        conformance::handles_adversarial_keys(&mut SkipList::new());
        conformance::remove_roundtrip(&mut SkipList::new());
    }

    #[test]
    fn differential_fuzz_vs_std() {
        conformance::differential_fuzz(&mut SkipList::new(), 0xBEEF);
    }

    #[test]
    fn churn_does_not_grow_arena() {
        let mut s = SkipList::new();
        for k in 0..100u64 {
            s.insert(k, RecordId(k as u32));
        }
        let before = s.arena_len();
        for round in 0..1_000u64 {
            let k = round % 100;
            s.remove(k).expect("present");
            s.insert(k, RecordId(0));
        }
        assert_eq!(s.arena_len(), before, "free list must recycle slots");
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn removal_keeps_order() {
        let mut s = SkipList::new();
        for k in 0..100u64 {
            s.insert(k, RecordId(k as u32));
        }
        for k in (0..100u64).step_by(3) {
            s.remove(k);
        }
        let keys: Vec<u64> = s.iter_keys().collect();
        let expect: Vec<u64> = (0..100u64).filter(|k| k % 3 != 0).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn iteration_is_sorted_regardless_of_insert_order() {
        let mut s = SkipList::new();
        for k in [9u64, 3, 7, 1, 5, 2, 8, 6, 4, 0] {
            s.insert(k, RecordId(k as u32));
        }
        let keys: Vec<u64> = s.iter_keys().collect();
        assert_eq!(keys, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn depth_is_logarithmic() {
        let mut s = SkipList::new();
        for k in 0..100_000u64 {
            s.insert(k, RecordId(k as u32));
        }
        let total: u64 = (0..1000u64)
            .map(|i| s.get(i * 97).unwrap().depth as u64)
            .sum();
        let avg = total as f64 / 1000.0;
        // ~2*log2(n) expected; allow generous slack.
        assert!(avg < 80.0, "average skip-list depth {avg} too deep");
        assert!(avg > 5.0, "suspiciously shallow for 100k keys: {avg}");
    }

    #[test]
    fn structure_is_deterministic() {
        let mut a = SkipList::new();
        let mut b = SkipList::new();
        for k in 0..1000u64 {
            a.insert(k, RecordId(0));
        }
        for k in (0..1000u64).rev() {
            b.insert(k, RecordId(0));
        }
        // Same keys -> same tower heights -> same lookup depths.
        for k in (0..1000u64).step_by(37) {
            assert_eq!(a.get(k).unwrap().depth, b.get(k).unwrap().depth);
        }
    }
}
