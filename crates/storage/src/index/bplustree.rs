//! A B+-tree with linked leaves, as in the TLX store the paper uses.
//!
//! Unlike the [`BTree`](super::BTree), values live only in leaves and the
//! leaves form a singly linked list, enabling ordered range scans (used by
//! TPC-C order-line access patterns).

use super::{IndexKind, KvIndex, Lookup};
use crate::record::RecordId;

const MAX_LEAF: usize = 16;
const MAX_INNER: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Inner {
        /// Separator keys; child `i` holds keys `< keys[i]`, the last child
        /// holds the rest.
        keys: Vec<u64>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<u64>,
        rids: Vec<RecordId>,
        next: Option<usize>,
    },
}

/// A B+-tree over `u64` keys with linked leaves and range scans.
///
/// # Examples
///
/// ```
/// use hades_storage::index::{BPlusTree, KvIndex};
/// use hades_storage::record::RecordId;
///
/// let mut t = BPlusTree::new();
/// for k in [5u64, 1, 9, 3] {
///     t.insert(k, RecordId(k as u32));
/// }
/// let scan: Vec<u64> = t.scan_keys(2, 3).collect();
/// assert_eq!(scan, vec![3, 5, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    /// Arena slots abandoned by merges, recycled by splits.
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl BPlusTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                rids: Vec::new(),
                next: None,
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Allocates an arena slot, preferring recycled ones.
    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Height of the tree (1 for a lone root leaf).
    pub fn height(&self) -> u32 {
        let mut h = 1;
        let mut n = self.root;
        while let Node::Inner { children, .. } = &self.nodes[n] {
            n = children[0];
            h += 1;
        }
        h
    }

    /// Descends to the leaf that should hold `key`; returns (leaf index,
    /// path of (inner node, child position), depth).
    fn descend(&self, key: u64) -> (usize, Vec<(usize, usize)>, u32) {
        let mut n = self.root;
        let mut path = Vec::new();
        let mut depth = 1;
        loop {
            match &self.nodes[n] {
                Node::Inner { keys, children } => {
                    let pos = keys.partition_point(|&k| k <= key);
                    path.push((n, pos));
                    n = children[pos];
                    depth += 1;
                }
                Node::Leaf { .. } => return (n, path, depth),
            }
        }
    }

    fn split_leaf(&mut self, leaf: usize) -> (u64, usize) {
        let new_idx = match self.free.last() {
            Some(&i) => i,
            None => self.nodes.len(),
        };
        let (sep, new_leaf) = match &mut self.nodes[leaf] {
            Node::Leaf { keys, rids, next } => {
                let mid = keys.len() / 2;
                let rkeys = keys.split_off(mid);
                let rrids = rids.split_off(mid);
                let sep = rkeys[0];
                let new_leaf = Node::Leaf {
                    keys: rkeys,
                    rids: rrids,
                    next: next.take(),
                };
                *next = Some(new_idx);
                (sep, new_leaf)
            }
            Node::Inner { .. } => unreachable!("split_leaf on inner node"),
        };
        let got = self.alloc(new_leaf);
        debug_assert_eq!(got, new_idx);
        (sep, new_idx)
    }

    fn split_inner(&mut self, inner: usize) -> (u64, usize) {
        let new_idx = match self.free.last() {
            Some(&i) => i,
            None => self.nodes.len(),
        };
        let (sep, new_inner) = match &mut self.nodes[inner] {
            Node::Inner { keys, children } => {
                let mid = keys.len() / 2;
                let rkeys = keys.split_off(mid + 1);
                let rchildren = children.split_off(mid + 1);
                let sep = keys.pop().expect("inner node nonempty at split");
                (
                    sep,
                    Node::Inner {
                        keys: rkeys,
                        children: rchildren,
                    },
                )
            }
            Node::Leaf { .. } => unreachable!("split_inner on leaf"),
        };
        let got = self.alloc(new_inner);
        debug_assert_eq!(got, new_idx);
        (sep, new_idx)
    }

    fn insert_into_parents(
        &mut self,
        mut path: Vec<(usize, usize)>,
        mut sep: u64,
        mut new_child: usize,
    ) {
        while let Some((inner, pos)) = path.pop() {
            match &mut self.nodes[inner] {
                Node::Inner { keys, children } => {
                    keys.insert(pos, sep);
                    children.insert(pos + 1, new_child);
                    if keys.len() <= MAX_INNER {
                        return;
                    }
                }
                Node::Leaf { .. } => unreachable!("path contains only inner nodes"),
            }
            let (s, n) = self.split_inner(inner);
            sep = s;
            new_child = n;
        }
        // Split reached the root: grow the tree.
        let old_root = self.root;
        self.root = self.nodes.len();
        self.nodes.push(Node::Inner {
            keys: vec![sep],
            children: vec![old_root, new_child],
        });
    }

    /// Iterates keys in ascending order starting at the first key `>= from`,
    /// yielding at most `count` keys.
    pub fn scan_keys(&self, from: u64, count: usize) -> impl Iterator<Item = u64> + '_ {
        self.scan(from, count).map(|(k, _)| k)
    }

    /// Iterates `(key, rid)` pairs in ascending order starting at the first
    /// key `>= from`, yielding at most `count` entries.
    pub fn scan(&self, from: u64, count: usize) -> impl Iterator<Item = (u64, RecordId)> + '_ {
        let (leaf, _, _) = self.descend(from);
        let mut node = Some(leaf);
        let mut pos = match &self.nodes[leaf] {
            Node::Leaf { keys, .. } => keys.partition_point(|&k| k < from),
            Node::Inner { .. } => 0,
        };
        let mut remaining = count;
        std::iter::from_fn(move || loop {
            if remaining == 0 {
                return None;
            }
            let n = node?;
            match &self.nodes[n] {
                Node::Leaf { keys, rids, next } => {
                    if pos < keys.len() {
                        let out = (keys[pos], rids[pos]);
                        pos += 1;
                        remaining -= 1;
                        return Some(out);
                    }
                    node = *next;
                    pos = 0;
                }
                Node::Inner { .. } => unreachable!("leaf chain contains only leaves"),
            }
        })
    }
}

/// A node underflows below half its maximum occupancy.
const MIN_LEAF: usize = MAX_LEAF / 2;
const MIN_INNER: usize = MAX_INNER / 2;

impl BPlusTree {
    /// Rebalances an underfull node at `path` depth `level` (the deepest
    /// entry of `path` is the underfull node's parent); borrows from a
    /// sibling or merges, propagating inner underflow toward the root.
    fn rebalance_up(&mut self, mut path: Vec<(usize, usize)>) {
        while let Some((parent, pos)) = path.pop() {
            let child = match &self.nodes[parent] {
                Node::Inner { children, .. } => children[pos],
                Node::Leaf { .. } => unreachable!("path holds inner nodes"),
            };
            let (child_len, child_is_leaf) = match &self.nodes[child] {
                Node::Leaf { keys, .. } => (keys.len(), true),
                Node::Inner { keys, .. } => (keys.len(), false),
            };
            let min = if child_is_leaf { MIN_LEAF } else { MIN_INNER };
            if child_len >= min {
                return; // fixed (or never broken) at this level
            }
            let sibling_len = |tree: &Self, idx: usize| match &tree.nodes[idx] {
                Node::Leaf { keys, .. } => keys.len(),
                Node::Inner { keys, .. } => keys.len(),
            };
            let n_children = match &self.nodes[parent] {
                Node::Inner { children, .. } => children.len(),
                Node::Leaf { .. } => unreachable!(),
            };
            let left = (pos > 0).then(|| match &self.nodes[parent] {
                Node::Inner { children, .. } => children[pos - 1],
                Node::Leaf { .. } => unreachable!(),
            });
            let right = (pos + 1 < n_children).then(|| match &self.nodes[parent] {
                Node::Inner { children, .. } => children[pos + 1],
                Node::Leaf { .. } => unreachable!(),
            });
            if let Some(l) = left {
                if sibling_len(self, l) > min {
                    self.borrow_from_left(parent, pos, l, child, child_is_leaf);
                    return;
                }
            }
            if let Some(r) = right {
                if sibling_len(self, r) > min {
                    self.borrow_from_right(parent, pos, child, r, child_is_leaf);
                    return;
                }
            }
            // Merge with a sibling; the parent loses a key and may now be
            // underfull itself — continue up the path.
            if let Some(l) = left {
                self.merge_into_left(parent, pos - 1, l, child);
            } else if let Some(r) = right {
                self.merge_into_left(parent, pos, child, r);
            } else {
                return; // single-child parent: only possible at the root
            }
        }
        // Reached the root: collapse an empty inner root.
        if let Node::Inner { keys, children } = &self.nodes[self.root] {
            if keys.is_empty() {
                let old = self.root;
                self.root = children[0];
                self.free.push(old);
            }
        }
    }

    fn borrow_from_left(
        &mut self,
        parent: usize,
        pos: usize,
        left: usize,
        child: usize,
        is_leaf: bool,
    ) {
        if is_leaf {
            let (k, r) = match &mut self.nodes[left] {
                Node::Leaf { keys, rids, .. } => {
                    (keys.pop().expect("donor"), rids.pop().expect("donor"))
                }
                Node::Inner { .. } => unreachable!(),
            };
            match &mut self.nodes[child] {
                Node::Leaf { keys, rids, .. } => {
                    keys.insert(0, k);
                    rids.insert(0, r);
                }
                Node::Inner { .. } => unreachable!(),
            }
            // The separator left of `child` becomes the moved key.
            match &mut self.nodes[parent] {
                Node::Inner { keys, .. } => keys[pos - 1] = k,
                Node::Leaf { .. } => unreachable!(),
            }
        } else {
            let (k, c) = match &mut self.nodes[left] {
                Node::Inner { keys, children } => {
                    (keys.pop().expect("donor"), children.pop().expect("donor"))
                }
                Node::Leaf { .. } => unreachable!(),
            };
            let sep = match &mut self.nodes[parent] {
                Node::Inner { keys, .. } => std::mem::replace(&mut keys[pos - 1], k),
                Node::Leaf { .. } => unreachable!(),
            };
            match &mut self.nodes[child] {
                Node::Inner { keys, children } => {
                    keys.insert(0, sep);
                    children.insert(0, c);
                }
                Node::Leaf { .. } => unreachable!(),
            }
        }
    }

    fn borrow_from_right(
        &mut self,
        parent: usize,
        pos: usize,
        child: usize,
        right: usize,
        is_leaf: bool,
    ) {
        if is_leaf {
            let (k, r) = match &mut self.nodes[right] {
                Node::Leaf { keys, rids, .. } => (keys.remove(0), rids.remove(0)),
                Node::Inner { .. } => unreachable!(),
            };
            let new_sep = match &self.nodes[right] {
                Node::Leaf { keys, .. } => keys[0],
                Node::Inner { .. } => unreachable!(),
            };
            match &mut self.nodes[child] {
                Node::Leaf { keys, rids, .. } => {
                    keys.push(k);
                    rids.push(r);
                }
                Node::Inner { .. } => unreachable!(),
            }
            match &mut self.nodes[parent] {
                Node::Inner { keys, .. } => keys[pos] = new_sep,
                Node::Leaf { .. } => unreachable!(),
            }
        } else {
            let (k, c) = match &mut self.nodes[right] {
                Node::Inner { keys, children } => (keys.remove(0), children.remove(0)),
                Node::Leaf { .. } => unreachable!(),
            };
            let sep = match &mut self.nodes[parent] {
                Node::Inner { keys, .. } => std::mem::replace(&mut keys[pos], k),
                Node::Leaf { .. } => unreachable!(),
            };
            match &mut self.nodes[child] {
                Node::Inner { keys, children } => {
                    keys.push(sep);
                    children.push(c);
                }
                Node::Leaf { .. } => unreachable!(),
            }
        }
    }

    /// Merges the child at `sep_pos + 1` into the child at `sep_pos`,
    /// removing the separator; abandons the right node in the arena.
    fn merge_into_left(&mut self, parent: usize, sep_pos: usize, left: usize, right: usize) {
        let sep = match &mut self.nodes[parent] {
            Node::Inner { keys, children } => {
                let sep = keys.remove(sep_pos);
                children.remove(sep_pos + 1);
                sep
            }
            Node::Leaf { .. } => unreachable!(),
        };
        // Take the right node's contents.
        let right_node = std::mem::replace(
            &mut self.nodes[right],
            Node::Leaf {
                keys: Vec::new(),
                rids: Vec::new(),
                next: None,
            },
        );
        match (&mut self.nodes[left], right_node) {
            (
                Node::Leaf { keys, rids, next },
                Node::Leaf {
                    keys: rk,
                    rids: rr,
                    next: rnext,
                },
            ) => {
                keys.extend(rk);
                rids.extend(rr);
                *next = rnext; // keep the leaf chain intact
            }
            (
                Node::Inner { keys, children },
                Node::Inner {
                    keys: rk,
                    children: rc,
                },
            ) => {
                keys.push(sep);
                keys.extend(rk);
                children.extend(rc);
            }
            _ => unreachable!("siblings are the same node kind"),
        }
        self.free.push(right);
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl KvIndex for BPlusTree {
    fn insert(&mut self, key: u64, rid: RecordId) -> Option<RecordId> {
        let (leaf, path, _) = self.descend(key);
        match &mut self.nodes[leaf] {
            Node::Leaf { keys, rids, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = rids[i];
                    rids[i] = rid;
                    return Some(old);
                }
                Err(i) => {
                    keys.insert(i, key);
                    rids.insert(i, rid);
                    self.len += 1;
                    if keys.len() <= MAX_LEAF {
                        return None;
                    }
                }
            },
            Node::Inner { .. } => unreachable!("descend returns a leaf"),
        }
        let (sep, new_leaf) = self.split_leaf(leaf);
        self.insert_into_parents(path, sep, new_leaf);
        None
    }

    fn remove(&mut self, key: u64) -> Option<RecordId> {
        let (leaf, path, _) = self.descend(key);
        let removed = match &mut self.nodes[leaf] {
            Node::Leaf { keys, rids, .. } => match keys.binary_search(&key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(rids.remove(i))
                }
                Err(_) => None,
            },
            Node::Inner { .. } => unreachable!("descend returns a leaf"),
        };
        if removed.is_some() {
            self.len -= 1;
            self.rebalance_up(path);
        }
        removed
    }

    fn get(&self, key: u64) -> Option<Lookup> {
        let (leaf, _, depth) = self.descend(key);
        match &self.nodes[leaf] {
            Node::Leaf { keys, rids, .. } => keys.binary_search(&key).ok().map(|i| Lookup {
                rid: rids[i],
                depth,
            }),
            Node::Inner { .. } => unreachable!("descend returns a leaf"),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> IndexKind {
        IndexKind::BPlusTree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::conformance;

    #[test]
    fn conforms() {
        conformance::insert_get_roundtrip(&mut BPlusTree::new());
        conformance::overwrite_returns_old(&mut BPlusTree::new());
        conformance::handles_adversarial_keys(&mut BPlusTree::new());
        conformance::remove_roundtrip(&mut BPlusTree::new());
    }

    #[test]
    fn differential_fuzz_vs_std() {
        conformance::differential_fuzz(&mut BPlusTree::new(), 0xB9);
    }

    #[test]
    fn leaf_chain_survives_merges() {
        let mut t = BPlusTree::new();
        for k in 0..2_000u64 {
            t.insert(k, RecordId(k as u32));
        }
        // Remove a broad band in the middle, forcing leaf merges.
        for k in 400..1_600u64 {
            assert!(t.remove(k).is_some());
        }
        let keys: Vec<u64> = t.scan_keys(0, 3_000).collect();
        let expect: Vec<u64> = (0..400).chain(1_600..2_000).collect();
        assert_eq!(keys, expect, "leaf chain broken by merges");
    }

    #[test]
    fn delete_everything_then_scan_is_empty() {
        let mut t = BPlusTree::new();
        for k in 0..3_000u64 {
            t.insert(k, RecordId(k as u32));
        }
        for k in (0..3_000u64).rev() {
            assert_eq!(t.remove(k), Some(RecordId(k as u32)));
        }
        assert!(t.is_empty());
        assert_eq!(t.scan_keys(0, 10).count(), 0);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn scan_crosses_leaf_boundaries() {
        let mut t = BPlusTree::new();
        for k in 0..500u64 {
            t.insert(k * 2, RecordId(k as u32)); // even keys
        }
        let got: Vec<u64> = t.scan_keys(101, 10).collect();
        assert_eq!(got, (51..61).map(|k| k * 2).collect::<Vec<_>>());
        // Scan past the end stops cleanly.
        let tail: Vec<u64> = t.scan_keys(995, 10).collect();
        assert_eq!(tail, vec![996, 998]);
        // Scan from before the first key.
        let head: Vec<u64> = t.scan_keys(0, 3).collect();
        assert_eq!(head, vec![0, 2, 4]);
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BPlusTree::new();
        for k in 0..200_000u64 {
            t.insert(k, RecordId(k as u32));
        }
        let h = t.height();
        assert!((4..=8).contains(&h), "height {h}");
        for k in (0..200_000u64).step_by(7919) {
            let hit = t.get(k).unwrap();
            assert_eq!(hit.depth, h, "every lookup reaches a leaf");
        }
    }

    #[test]
    fn random_order_inserts_all_found_and_sorted() {
        let mut t = BPlusTree::new();
        let mut key = 7u64;
        let mut keys = Vec::new();
        for i in 0..20_000u32 {
            key = key.wrapping_mul(6364136223846793005).wrapping_add(13);
            t.insert(key, RecordId(i));
            keys.push(key);
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(t.len(), keys.len());
        let scanned: Vec<u64> = t.scan_keys(0, keys.len() + 10).collect();
        assert_eq!(scanned, keys);
    }
}
