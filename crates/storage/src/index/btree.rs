//! An in-memory B-tree (keys and values in every node), as in the
//! `cpp-btree` store the paper uses.

use super::{IndexKind, KvIndex, Lookup};
use crate::record::RecordId;

/// Maximum keys per node (order 16 keeps nodes around a few cache lines,
/// matching in-memory B-tree practice).
const MAX_KEYS: usize = 15;
const MIN_DEGREE: usize = MAX_KEYS.div_ceil(2); // t = 8; full node has 2t-1 keys

#[derive(Debug, Clone)]
struct Node {
    keys: Vec<u64>,
    rids: Vec<RecordId>,
    /// Empty for leaves; otherwise `keys.len() + 1` children.
    children: Vec<usize>,
}

impl Node {
    fn leaf() -> Self {
        Node {
            keys: Vec::with_capacity(MAX_KEYS),
            rids: Vec::with_capacity(MAX_KEYS),
            children: Vec::new(),
        }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn is_full(&self) -> bool {
        self.keys.len() == MAX_KEYS
    }
}

/// An arena-allocated B-tree over `u64` keys. Lookup depth is the number of
/// nodes visited from the root.
///
/// # Examples
///
/// ```
/// use hades_storage::index::{BTree, KvIndex};
/// use hades_storage::record::RecordId;
///
/// let mut t = BTree::new();
/// for k in 0..100 {
///     t.insert(k, RecordId(k as u32));
/// }
/// assert_eq!(t.get(57).unwrap().rid, RecordId(57));
/// ```
#[derive(Debug, Clone)]
pub struct BTree {
    nodes: Vec<Node>,
    /// Arena slots abandoned by merges, recycled by splits.
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl BTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BTree {
            nodes: vec![Node::leaf()],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Allocates an arena slot, preferring recycled ones.
    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Height of the tree (1 for a lone root leaf).
    pub fn height(&self) -> u32 {
        let mut h = 1;
        let mut n = self.root;
        while !self.nodes[n].is_leaf() {
            n = self.nodes[n].children[0];
            h += 1;
        }
        h
    }

    /// Splits the full child `child_idx` of `parent`; `pos` is the child's
    /// position in the parent's children array.
    fn split_child(&mut self, parent: usize, pos: usize, child_idx: usize) {
        let mid = MIN_DEGREE - 1;
        let (mid_key, mid_rid, right) = {
            let child = &mut self.nodes[child_idx];
            let right_keys = child.keys.split_off(mid + 1);
            let right_rids = child.rids.split_off(mid + 1);
            let right_children = if child.is_leaf() {
                Vec::new()
            } else {
                child.children.split_off(mid + 1)
            };
            let mid_key = child.keys.pop().expect("full node has middle key");
            let mid_rid = child.rids.pop().expect("full node has middle rid");
            (
                mid_key,
                mid_rid,
                Node {
                    keys: right_keys,
                    rids: right_rids,
                    children: right_children,
                },
            )
        };
        let right_idx = self.alloc(right);
        let p = &mut self.nodes[parent];
        p.keys.insert(pos, mid_key);
        p.rids.insert(pos, mid_rid);
        p.children.insert(pos + 1, right_idx);
    }

    /// Inserts into a node known not to be full, splitting full children on
    /// the way down (CLRS preemptive splitting).
    fn insert_nonfull(&mut self, mut n: usize, key: u64, rid: RecordId) -> Option<RecordId> {
        loop {
            match self.nodes[n].keys.binary_search(&key) {
                Ok(i) => {
                    let old = self.nodes[n].rids[i];
                    self.nodes[n].rids[i] = rid;
                    return Some(old);
                }
                Err(i) => {
                    if self.nodes[n].is_leaf() {
                        self.nodes[n].keys.insert(i, key);
                        self.nodes[n].rids.insert(i, rid);
                        self.len += 1;
                        return None;
                    }
                    let child = self.nodes[n].children[i];
                    if self.nodes[child].is_full() {
                        self.split_child(n, i, child);
                        // Re-dispatch around the promoted key.
                        match key.cmp(&self.nodes[n].keys[i]) {
                            std::cmp::Ordering::Equal => {
                                let old = self.nodes[n].rids[i];
                                self.nodes[n].rids[i] = rid;
                                return Some(old);
                            }
                            std::cmp::Ordering::Greater => {
                                n = self.nodes[n].children[i + 1];
                            }
                            std::cmp::Ordering::Less => {
                                n = self.nodes[n].children[i];
                            }
                        }
                    } else {
                        n = child;
                    }
                }
            }
        }
    }
}

impl BTree {
    /// The rightmost (key, rid) pair of the subtree rooted at `n`.
    fn max_of(&self, mut n: usize) -> (u64, RecordId) {
        loop {
            let node = &self.nodes[n];
            if node.is_leaf() {
                let last = node.keys.len() - 1;
                return (node.keys[last], node.rids[last]);
            }
            n = *node.children.last().expect("inner node has children");
        }
    }

    /// The leftmost (key, rid) pair of the subtree rooted at `n`.
    fn min_of(&self, mut n: usize) -> (u64, RecordId) {
        loop {
            let node = &self.nodes[n];
            if node.is_leaf() {
                return (node.keys[0], node.rids[0]);
            }
            n = node.children[0];
        }
    }

    /// Moves the last (key, child) of child `i-1` up through the parent
    /// into the front of child `i`.
    fn borrow_from_prev(&mut self, parent: usize, i: usize) {
        let left = self.nodes[parent].children[i - 1];
        let child = self.nodes[parent].children[i];
        let lk = self.nodes[left].keys.pop().expect("donor nonempty");
        let lr = self.nodes[left].rids.pop().expect("donor nonempty");
        let lc = if self.nodes[left].is_leaf() {
            None
        } else {
            self.nodes[left].children.pop()
        };
        let sep_k = std::mem::replace(&mut self.nodes[parent].keys[i - 1], lk);
        let sep_r = std::mem::replace(&mut self.nodes[parent].rids[i - 1], lr);
        self.nodes[child].keys.insert(0, sep_k);
        self.nodes[child].rids.insert(0, sep_r);
        if let Some(c) = lc {
            self.nodes[child].children.insert(0, c);
        }
    }

    /// Moves the first (key, child) of child `i+1` up through the parent
    /// onto the back of child `i`.
    fn borrow_from_next(&mut self, parent: usize, i: usize) {
        let right = self.nodes[parent].children[i + 1];
        let child = self.nodes[parent].children[i];
        let rk = self.nodes[right].keys.remove(0);
        let rr = self.nodes[right].rids.remove(0);
        let rc = if self.nodes[right].is_leaf() {
            None
        } else {
            Some(self.nodes[right].children.remove(0))
        };
        let sep_k = std::mem::replace(&mut self.nodes[parent].keys[i], rk);
        let sep_r = std::mem::replace(&mut self.nodes[parent].rids[i], rr);
        self.nodes[child].keys.push(sep_k);
        self.nodes[child].rids.push(sep_r);
        if let Some(c) = rc {
            self.nodes[child].children.push(c);
        }
    }

    /// Merges child `i+1` and the separator at `i` into child `i`; the
    /// right node is abandoned in the arena.
    fn merge_children(&mut self, parent: usize, i: usize) {
        let left = self.nodes[parent].children[i];
        let right = self.nodes[parent].children.remove(i + 1);
        let sep_k = self.nodes[parent].keys.remove(i);
        let sep_r = self.nodes[parent].rids.remove(i);
        let right_keys = std::mem::take(&mut self.nodes[right].keys);
        let right_rids = std::mem::take(&mut self.nodes[right].rids);
        let right_children = std::mem::take(&mut self.nodes[right].children);
        let l = &mut self.nodes[left];
        l.keys.push(sep_k);
        l.rids.push(sep_r);
        l.keys.extend(right_keys);
        l.rids.extend(right_rids);
        l.children.extend(right_children);
        self.free.push(right);
    }

    /// Ensures child `i` of `parent` has at least `MIN_DEGREE` keys before
    /// descending; returns the (possibly shifted) child index.
    fn fill_child(&mut self, parent: usize, i: usize) -> usize {
        let child = self.nodes[parent].children[i];
        if self.nodes[child].keys.len() >= MIN_DEGREE {
            return i;
        }
        if i > 0 && self.nodes[self.nodes[parent].children[i - 1]].keys.len() >= MIN_DEGREE {
            self.borrow_from_prev(parent, i);
            i
        } else if i + 1 < self.nodes[parent].children.len()
            && self.nodes[self.nodes[parent].children[i + 1]].keys.len() >= MIN_DEGREE
        {
            self.borrow_from_next(parent, i);
            i
        } else if i + 1 < self.nodes[parent].children.len() {
            self.merge_children(parent, i);
            i
        } else {
            self.merge_children(parent, i - 1);
            i - 1
        }
    }

    /// CLRS deletion from the subtree rooted at `n`, which is guaranteed to
    /// have at least `MIN_DEGREE` keys (or to be the root).
    fn remove_from(&mut self, n: usize, key: u64) -> Option<RecordId> {
        match self.nodes[n].keys.binary_search(&key) {
            Ok(i) => {
                if self.nodes[n].is_leaf() {
                    self.nodes[n].keys.remove(i);
                    return Some(self.nodes[n].rids.remove(i));
                }
                let removed = self.nodes[n].rids[i];
                let left = self.nodes[n].children[i];
                let right = self.nodes[n].children[i + 1];
                if self.nodes[left].keys.len() >= MIN_DEGREE {
                    // Replace with the in-order predecessor, delete it below.
                    let (pk, pr) = self.max_of(left);
                    self.nodes[n].keys[i] = pk;
                    self.nodes[n].rids[i] = pr;
                    self.remove_from(left, pk);
                } else if self.nodes[right].keys.len() >= MIN_DEGREE {
                    let (sk, sr) = self.min_of(right);
                    self.nodes[n].keys[i] = sk;
                    self.nodes[n].rids[i] = sr;
                    self.remove_from(right, sk);
                } else {
                    self.merge_children(n, i);
                    self.remove_from(left, key);
                }
                Some(removed)
            }
            Err(i) => {
                if self.nodes[n].is_leaf() {
                    return None;
                }
                let i = self.fill_child(n, i);
                let child = self.nodes[n].children[i];
                self.remove_from(child, key)
            }
        }
    }
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl KvIndex for BTree {
    fn insert(&mut self, key: u64, rid: RecordId) -> Option<RecordId> {
        if self.nodes[self.root].is_full() {
            let old_root = self.root;
            let new_root = Node {
                keys: Vec::new(),
                rids: Vec::new(),
                children: vec![old_root],
            };
            self.root = self.nodes.len();
            self.nodes.push(new_root);
            self.split_child(self.root, 0, old_root);
        }
        self.insert_nonfull(self.root, key, rid)
    }

    fn remove(&mut self, key: u64) -> Option<RecordId> {
        let removed = self.remove_from(self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // An empty internal root hands the tree to its only child.
        if self.nodes[self.root].keys.is_empty() && !self.nodes[self.root].is_leaf() {
            let old = self.root;
            self.root = self.nodes[self.root].children[0];
            self.free.push(old);
        }
        removed
    }

    fn get(&self, key: u64) -> Option<Lookup> {
        let mut n = self.root;
        let mut depth = 1;
        loop {
            let node = &self.nodes[n];
            match node.keys.binary_search(&key) {
                Ok(i) => {
                    return Some(Lookup {
                        rid: node.rids[i],
                        depth,
                    })
                }
                Err(i) => {
                    if node.is_leaf() {
                        return None;
                    }
                    n = node.children[i];
                    depth += 1;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> IndexKind {
        IndexKind::BTree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::conformance;

    #[test]
    fn conforms() {
        conformance::insert_get_roundtrip(&mut BTree::new());
        conformance::overwrite_returns_old(&mut BTree::new());
        conformance::handles_adversarial_keys(&mut BTree::new());
        conformance::remove_roundtrip(&mut BTree::new());
    }

    #[test]
    fn differential_fuzz_vs_std() {
        conformance::differential_fuzz(&mut BTree::new(), 0xB7EE);
    }

    #[test]
    fn delete_everything_then_refill() {
        let mut t = BTree::new();
        for k in 0..5_000u64 {
            t.insert(k, RecordId(k as u32));
        }
        for k in 0..5_000u64 {
            assert_eq!(t.remove(k), Some(RecordId(k as u32)), "remove {k}");
        }
        assert!(t.is_empty());
        for k in 0..5_000u64 {
            assert!(t.insert(k, RecordId(1)).is_none());
        }
        assert_eq!(t.len(), 5_000);
    }

    #[test]
    fn height_shrinks_after_mass_deletion() {
        let mut t = BTree::new();
        for k in 0..50_000u64 {
            t.insert(k, RecordId(k as u32));
        }
        let tall = t.height();
        for k in 0..49_900u64 {
            t.remove(k);
        }
        assert!(
            t.height() < tall,
            "height should shrink: {} vs {tall}",
            t.height()
        );
        for k in 49_900..50_000u64 {
            assert_eq!(t.get(k).unwrap().rid, RecordId(k as u32));
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BTree::new();
        for k in 0..100_000u64 {
            t.insert(k, RecordId(k as u32));
        }
        let h = t.height();
        // log_8(100k) ~ 5.5; sequential inserts make half-full nodes, allow 8.
        assert!((4..=8).contains(&h), "height {h}");
        // Depth of any lookup is bounded by the height.
        for k in (0..100_000u64).step_by(9973) {
            assert!(t.get(k).unwrap().depth <= h);
        }
    }

    #[test]
    fn random_order_inserts_all_found() {
        let mut t = BTree::new();
        let mut key = 1u64;
        let mut inserted = Vec::new();
        for i in 0..30_000u32 {
            key = key
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.insert(key, RecordId(i));
            inserted.push((key, i));
        }
        for (k, i) in inserted {
            assert_eq!(t.get(k).unwrap().rid, RecordId(i), "key {k}");
        }
    }

    #[test]
    fn promoted_key_overwrite_during_split() {
        // Regression: inserting a key equal to one just promoted by a
        // preemptive split must overwrite, not duplicate.
        let mut t = BTree::new();
        for k in 0..64u64 {
            t.insert(k, RecordId(k as u32));
        }
        let n = t.len();
        for k in 0..64u64 {
            assert_eq!(
                t.insert(k, RecordId(1000 + k as u32)),
                Some(RecordId(k as u32))
            );
        }
        assert_eq!(t.len(), n);
    }
}
