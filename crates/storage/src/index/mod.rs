//! Key-value index structures.
//!
//! The paper evaluates four stores — HashTable (HT), Map, B-Tree and
//! B+Tree (Section VII) — implemented here from scratch. Each index maps a
//! `u64` key to a [`RecordId`] and reports the *traversal depth* of every
//! lookup, which the simulators convert into index-walk latency
//! (`SwCosts::index_per_level`).
//!
//! The paper's workloads never delete keys (YCSB A/B read/update, TPC-C
//! and Smallbank insert/update), but the stores support removal — with
//! tombstones (hash table), unlinking (skip list) and full
//! rebalancing (B-tree, B+-tree) — so the library is usable beyond the
//! reproduction.

use crate::record::RecordId;

pub mod bplustree;
pub mod btree;
pub mod hashtable;
pub mod skiplist;

pub use bplustree::BPlusTree;
pub use btree::BTree;
pub use hashtable::HashTable;
pub use skiplist::SkipList;

/// The four store shapes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Open-addressing hash table ("HT").
    HashTable,
    /// Skip list ("Map").
    Map,
    /// In-memory B-tree.
    BTree,
    /// B+-tree with linked leaves.
    BPlusTree,
}

impl IndexKind {
    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            IndexKind::HashTable => "HT",
            IndexKind::Map => "Map",
            IndexKind::BTree => "BTree",
            IndexKind::BPlusTree => "B+Tree",
        }
    }
}

/// A successful lookup: the record handle and the number of node/probe
/// steps the traversal took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// The record the key maps to.
    pub rid: RecordId,
    /// Traversal depth (probes for a hash table, levels for trees/lists).
    pub depth: u32,
}

/// Common interface over the four index structures.
pub trait KvIndex: std::fmt::Debug {
    /// Inserts `key -> rid`; returns the previous mapping if any.
    fn insert(&mut self, key: u64, rid: RecordId) -> Option<RecordId>;

    /// Looks up `key`, reporting traversal depth.
    fn get(&self, key: u64) -> Option<Lookup>;

    /// Removes `key`, returning its mapping if present.
    fn remove(&mut self, key: u64) -> Option<RecordId>;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which of the four shapes this is.
    fn kind(&self) -> IndexKind;
}

/// Constructs an empty index of the requested shape.
pub fn new_index(kind: IndexKind) -> Box<dyn KvIndex + Send> {
    match kind {
        IndexKind::HashTable => Box::new(HashTable::new()),
        IndexKind::Map => Box::new(SkipList::new()),
        IndexKind::BTree => Box::new(BTree::new()),
        IndexKind::BPlusTree => Box::new(BPlusTree::new()),
    }
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared behavioural tests run against every index implementation.
    use super::*;

    pub fn insert_get_roundtrip(idx: &mut dyn KvIndex) {
        assert!(idx.is_empty());
        for k in 0..1000u64 {
            assert!(idx.insert(k * 7 + 1, RecordId(k as u32)).is_none());
        }
        assert_eq!(idx.len(), 1000);
        for k in 0..1000u64 {
            let hit = idx.get(k * 7 + 1).expect("key present");
            assert_eq!(hit.rid, RecordId(k as u32));
            assert!(hit.depth >= 1);
        }
        assert!(idx.get(5).is_none());
    }

    pub fn overwrite_returns_old(idx: &mut dyn KvIndex) {
        assert_eq!(idx.insert(42, RecordId(1)), None);
        assert_eq!(idx.insert(42, RecordId(2)), Some(RecordId(1)));
        assert_eq!(idx.get(42).unwrap().rid, RecordId(2));
        assert_eq!(idx.len(), 1);
    }

    pub fn handles_adversarial_keys(idx: &mut dyn KvIndex) {
        let keys = [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, 0xFFFF_0000];
        for (i, &k) in keys.iter().enumerate() {
            idx.insert(k, RecordId(i as u32));
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(idx.get(k).unwrap().rid, RecordId(i as u32), "key {k}");
        }
    }

    pub fn remove_roundtrip(idx: &mut dyn KvIndex) {
        for k in 0..500u64 {
            idx.insert(k, RecordId(k as u32));
        }
        // Remove the odd keys.
        for k in (1..500u64).step_by(2) {
            assert_eq!(idx.remove(k), Some(RecordId(k as u32)), "remove {k}");
            assert_eq!(idx.remove(k), None, "double remove {k}");
        }
        assert_eq!(idx.len(), 250);
        for k in 0..500u64 {
            if k % 2 == 0 {
                assert_eq!(idx.get(k).unwrap().rid, RecordId(k as u32), "kept {k}");
            } else {
                assert!(idx.get(k).is_none(), "removed {k} still present");
            }
        }
        // Reinsert over the holes.
        for k in (1..500u64).step_by(2) {
            assert!(idx.insert(k, RecordId(9_000 + k as u32)).is_none());
        }
        assert_eq!(idx.len(), 500);
        assert_eq!(idx.get(333).unwrap().rid, RecordId(9_333));
    }

    /// Differential fuzz against `std::collections::HashMap`.
    pub fn differential_fuzz(idx: &mut dyn KvIndex, seed: u64) {
        use std::collections::HashMap;
        let mut reference: HashMap<u64, RecordId> = HashMap::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..20_000u32 {
            let key = next() % 512; // small domain: plenty of collisions
            match next() % 3 {
                0 | 1 => {
                    let rid = RecordId(i);
                    assert_eq!(
                        idx.insert(key, rid),
                        reference.insert(key, rid),
                        "insert {key}"
                    );
                }
                _ => {
                    assert_eq!(idx.remove(key), reference.remove(&key), "remove {key}");
                }
            }
            if i % 1024 == 0 {
                assert_eq!(idx.len(), reference.len(), "len drift at step {i}");
            }
        }
        for (k, v) in &reference {
            assert_eq!(idx.get(*k).map(|l| l.rid), Some(*v), "final check {k}");
        }
        assert_eq!(idx.len(), reference.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_all_kinds() {
        for kind in [
            IndexKind::HashTable,
            IndexKind::Map,
            IndexKind::BTree,
            IndexKind::BPlusTree,
        ] {
            let mut idx = new_index(kind);
            assert_eq!(idx.kind(), kind);
            idx.insert(1, RecordId(9));
            assert_eq!(idx.get(1).unwrap().rid, RecordId(9));
            assert_eq!(idx.remove(1), Some(RecordId(9)));
            assert!(idx.is_empty());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(IndexKind::HashTable.label(), "HT");
        assert_eq!(IndexKind::Map.label(), "Map");
        assert_eq!(IndexKind::BTree.label(), "BTree");
        assert_eq!(IndexKind::BPlusTree.label(), "B+Tree");
    }
}
