//! The partitioned database: tables, record placement and allocation.
//!
//! Records are statically distributed across the nodes in a uniform manner
//! (Section VII) via a hash partition; each node owns a disjoint slab of
//! the global cache-line address space. All simulated protocols share one
//! `Database` — it *is* the cluster's storage.

use crate::index::{new_index, IndexKind, KvIndex, Lookup};
use crate::record::{Record, RecordId};
use hades_sim::ids::NodeId;
use hades_sim::rng::SimRng;

/// Identifies a table within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

/// Bits reserved for the per-node line-address slab; node `n`'s lines start
/// at `n << NODE_SLAB_SHIFT`.
const NODE_SLAB_SHIFT: u32 = 40;

/// Uniform static partition: the home node of `key` among `nodes` nodes.
pub fn uniform_home(key: u64, nodes: usize) -> NodeId {
    assert!(nodes > 0 && nodes < (1 << 16), "node count {nodes} invalid");
    let mut h = key.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    NodeId((h % nodes as u64) as u16)
}

/// The node that owns a cache-line address.
pub fn home_of_line(line: u64) -> NodeId {
    NodeId((line >> NODE_SLAB_SHIFT) as u16)
}

#[derive(Debug)]
struct Table {
    name: String,
    index: Box<dyn KvIndex + Send>,
    /// Keys grouped by home node, for locality-aware sampling (Fig 12b).
    keys_by_home: Vec<Vec<u64>>,
}

/// A partitioned multi-table database over `N` nodes.
///
/// # Examples
///
/// ```
/// use hades_storage::db::Database;
/// use hades_storage::index::IndexKind;
///
/// let mut db = Database::new(5);
/// let t = db.create_table("accounts", IndexKind::HashTable);
/// let rid = db.insert(t, 42, vec![0u8; 128]);
/// let hit = db.lookup(t, 42).unwrap();
/// assert_eq!(hit.rid, rid);
/// assert_eq!(db.record(rid).num_lines(), 2);
/// ```
#[derive(Debug)]
pub struct Database {
    nodes: usize,
    tables: Vec<Table>,
    records: Vec<Record>,
    /// Next free line offset within each node's slab.
    next_line: Vec<u64>,
    /// Freed records available for reuse, keyed by (home, line count).
    free_records: std::collections::HashMap<(NodeId, u32), Vec<RecordId>>,
    /// Whether committed writes are appended to the history log.
    history_enabled: bool,
    /// Per-record committed-write version counter (history mode only).
    commit_seq: std::collections::HashMap<RecordId, u64>,
    /// Append-only log of committed writes (history mode only).
    history: Vec<CommitHistoryEntry>,
}

/// One committed write in the database's optional history log: which
/// record, its per-record version number, and the value observed after
/// the mutation (the post-RMW counter word for RMW ops, 0 otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitHistoryEntry {
    /// The mutated record.
    pub rid: RecordId,
    /// Per-record version: 1 for the record's first committed write,
    /// then strictly +1 per subsequent committed write.
    pub seq: u64,
    /// Value read back after the mutation (RMW ops only; 0 otherwise).
    pub value_after: u64,
}

impl Database {
    /// Creates an empty database partitioned over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "database needs at least one node");
        Database {
            nodes,
            tables: Vec::new(),
            records: Vec::new(),
            next_line: vec![0; nodes],
            free_records: std::collections::HashMap::new(),
            history_enabled: false,
            commit_seq: std::collections::HashMap::new(),
            history: Vec::new(),
        }
    }

    /// Turns on the committed-write history log (off by default; a run
    /// with it off records nothing and behaves byte-identically to a
    /// build without the log).
    pub fn enable_commit_history(&mut self) {
        self.history_enabled = true;
    }

    /// Whether the committed-write history log is recording.
    pub fn commit_history_enabled(&self) -> bool {
        self.history_enabled
    }

    /// Appends one committed write to the history log and returns the
    /// record's new version number. No-op (returning 0) when the log is
    /// disabled.
    pub fn note_commit(&mut self, rid: RecordId, value_after: u64) -> u64 {
        if !self.history_enabled {
            return 0;
        }
        let seq = self.commit_seq.entry(rid).or_insert(0);
        *seq += 1;
        let seq = *seq;
        self.history.push(CommitHistoryEntry {
            rid,
            seq,
            value_after,
        });
        seq
    }

    /// The record's current committed-write version (0 if never written
    /// or the log is disabled).
    pub fn commit_seq_of(&self, rid: RecordId) -> u64 {
        self.commit_seq.get(&rid).copied().unwrap_or(0)
    }

    /// The committed-write history log, in commit order.
    pub fn commit_history(&self) -> &[CommitHistoryEntry] {
        &self.history
    }

    /// Number of nodes data is partitioned over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Creates a table backed by the given index shape.
    pub fn create_table(&mut self, name: &str, kind: IndexKind) -> TableId {
        let id = TableId(self.tables.len() as u16);
        self.tables.push(Table {
            name: name.to_string(),
            index: new_index(kind),
            keys_by_home: vec![Vec::new(); self.nodes],
        });
        id
    }

    /// Table display name.
    pub fn table_name(&self, table: TableId) -> &str {
        &self.tables[table.0 as usize].name
    }

    /// Number of keys in a table.
    pub fn table_len(&self, table: TableId) -> usize {
        self.tables[table.0 as usize].index.len()
    }

    /// Total records across all tables.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Inserts a record with the default (uniform hash) placement.
    pub fn insert(&mut self, table: TableId, key: u64, value: Vec<u8>) -> RecordId {
        let home = uniform_home(key, self.nodes);
        self.insert_at(table, key, value, home)
    }

    /// Inserts a record homed at an explicit node (used by workloads that
    /// co-locate related records, e.g. TPC-C districts with their
    /// warehouse).
    ///
    /// # Panics
    ///
    /// Panics if the key already exists in the table, if `home` is out of
    /// range, or if `value` is empty.
    pub fn insert_at(
        &mut self,
        table: TableId,
        key: u64,
        value: Vec<u8>,
        home: NodeId,
    ) -> RecordId {
        assert!((home.0 as usize) < self.nodes, "home {home} out of range");
        let num_lines = value.len().div_ceil(crate::record::LINE_BYTES) as u32;
        // Reuse a freed record of the same geometry if one exists: the
        // record keeps its (bumped) incarnation, which is how Fig 1's
        // incarnation field lets readers detect freed-and-reused records.
        let rid = if let Some(rid) = self
            .free_records
            .get_mut(&(home, num_lines))
            .and_then(|v| v.pop())
        {
            self.records[rid.0 as usize].reset_value(value);
            rid
        } else {
            let slab = &mut self.next_line[home.0 as usize];
            let base_line = ((home.0 as u64) << NODE_SLAB_SHIFT) + *slab;
            *slab += num_lines as u64;
            let rid = RecordId(self.records.len() as u32);
            self.records.push(Record::new(home, base_line, value));
            rid
        };
        let t = &mut self.tables[table.0 as usize];
        let prev = t.index.insert(key, rid);
        assert!(prev.is_none(), "duplicate key {key} in table {table:?}");
        t.keys_by_home[home.0 as usize].push(key);
        rid
    }

    /// Removes `key` from `table`, freeing its record for reuse. The
    /// record's incarnation is bumped (Fig 1): a stale reader that fetched
    /// the record before the free can detect the reuse.
    ///
    /// # Panics
    ///
    /// Panics if the record is still locked.
    pub fn remove(&mut self, table: TableId, key: u64) -> Option<RecordId> {
        let t = &mut self.tables[table.0 as usize];
        let rid = t.index.remove(key)?;
        let rec = &mut self.records[rid.0 as usize];
        assert!(!rec.is_locked(), "removing a locked record");
        rec.bump_incarnation();
        let home = rec.home();
        let lines = rec.num_lines();
        t.keys_by_home[home.0 as usize].retain(|&k| k != key);
        self.free_records
            .entry((home, lines))
            .or_default()
            .push(rid);
        Some(rid)
    }

    /// Looks up a key, reporting index traversal depth for timing.
    pub fn lookup(&self, table: TableId, key: u64) -> Option<Lookup> {
        self.tables[table.0 as usize].index.get(key)
    }

    /// Immutable access to a record.
    pub fn record(&self, rid: RecordId) -> &Record {
        &self.records[rid.0 as usize]
    }

    /// Mutable access to a record.
    pub fn record_mut(&mut self, rid: RecordId) -> &mut Record {
        &mut self.records[rid.0 as usize]
    }

    /// A uniformly random key from `table` homed at `node`, or `None` if
    /// that node holds no keys of this table.
    pub fn random_key_at(&self, table: TableId, node: NodeId, rng: &mut SimRng) -> Option<u64> {
        let keys = &self.tables[table.0 as usize].keys_by_home[node.0 as usize];
        if keys.is_empty() {
            None
        } else {
            Some(keys[rng.below(keys.len() as u64) as usize])
        }
    }

    /// A uniformly random key from `table` homed anywhere *except* `node`.
    pub fn random_key_not_at(&self, table: TableId, node: NodeId, rng: &mut SimRng) -> Option<u64> {
        let t = &self.tables[table.0 as usize];
        let total: usize = t
            .keys_by_home
            .iter()
            .enumerate()
            .filter(|(n, _)| *n != node.0 as usize)
            .map(|(_, k)| k.len())
            .sum();
        if total == 0 {
            return None;
        }
        let mut pick = rng.below(total as u64) as usize;
        for (n, keys) in t.keys_by_home.iter().enumerate() {
            if n == node.0 as usize {
                continue;
            }
            if pick < keys.len() {
                return Some(keys[pick]);
            }
            pick -= keys.len();
        }
        unreachable!("pick within total")
    }

    /// Keys of `table` homed at `node` (read-only view).
    pub fn keys_at(&self, table: TableId, node: NodeId) -> &[u64] {
        &self.tables[table.0 as usize].keys_by_home[node.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_home_is_balanced() {
        let nodes = 5;
        let mut counts = vec![0u32; nodes];
        for key in 0..50_000u64 {
            counts[uniform_home(key, nodes).0 as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "partition skewed: {c}");
        }
    }

    #[test]
    fn line_slabs_are_disjoint_per_node() {
        let mut db = Database::new(3);
        let t = db.create_table("t", IndexKind::HashTable);
        for key in 0..300u64 {
            db.insert(t, key, vec![0u8; 128]);
        }
        for key in 0..300u64 {
            let rid = db.lookup(t, key).unwrap().rid;
            let r = db.record(rid);
            for line in r.lines() {
                assert_eq!(home_of_line(line), r.home(), "line in wrong slab");
            }
        }
    }

    #[test]
    fn explicit_placement_respected() {
        let mut db = Database::new(4);
        let t = db.create_table("w", IndexKind::BTree);
        let rid = db.insert_at(t, 7, vec![1u8; 64], NodeId(3));
        assert_eq!(db.record(rid).home(), NodeId(3));
        assert_eq!(db.keys_at(t, NodeId(3)), &[7]);
        assert!(db.keys_at(t, NodeId(0)).is_empty());
    }

    #[test]
    fn locality_sampling() {
        let mut db = Database::new(2);
        let t = db.create_table("t", IndexKind::Map);
        db.insert_at(t, 1, vec![0u8; 64], NodeId(0));
        db.insert_at(t, 2, vec![0u8; 64], NodeId(1));
        db.insert_at(t, 3, vec![0u8; 64], NodeId(1));
        let mut rng = SimRng::seed_from(1);
        for _ in 0..20 {
            assert_eq!(db.random_key_at(t, NodeId(0), &mut rng), Some(1));
            let k = db.random_key_not_at(t, NodeId(0), &mut rng).unwrap();
            assert!(k == 2 || k == 3);
            let k = db.random_key_not_at(t, NodeId(1), &mut rng).unwrap();
            assert_eq!(k, 1);
        }
    }

    #[test]
    fn empty_node_sampling_returns_none() {
        let mut db = Database::new(2);
        let t = db.create_table("t", IndexKind::HashTable);
        let mut rng = SimRng::seed_from(2);
        assert_eq!(db.random_key_at(t, NodeId(0), &mut rng), None);
        assert_eq!(db.random_key_not_at(t, NodeId(0), &mut rng), None);
    }

    #[test]
    fn multiple_tables_are_independent() {
        let mut db = Database::new(2);
        let a = db.create_table("a", IndexKind::HashTable);
        let b = db.create_table("b", IndexKind::BPlusTree);
        db.insert(a, 1, vec![0u8; 64]);
        db.insert(b, 1, vec![0u8; 192]);
        assert_eq!(db.table_len(a), 1);
        assert_eq!(db.table_len(b), 1);
        assert_eq!(db.record_count(), 2);
        let ra = db.record(db.lookup(a, 1).unwrap().rid);
        let rb = db.record(db.lookup(b, 1).unwrap().rid);
        assert_eq!(ra.num_lines(), 1);
        assert_eq!(rb.num_lines(), 3);
        assert_eq!(db.table_name(b), "b");
    }

    #[test]
    fn remove_frees_and_reuse_bumps_incarnation() {
        let mut db = Database::new(2);
        let t = db.create_table("t", IndexKind::HashTable);
        let rid = db.insert(t, 7, vec![1u8; 128]);
        let base_lines: Vec<u64> = db.record(rid).lines().collect();
        assert_eq!(db.record(rid).incarnation(), 0);
        assert_eq!(db.remove(t, 7), Some(rid));
        assert!(db.lookup(t, 7).is_none());
        assert_eq!(db.record(rid).incarnation(), 1, "free bumps incarnation");
        // Same-geometry insert reuses the record (and its lines).
        let home = db.record(rid).home();
        let rid2 = db.insert_at(t, 8, vec![2u8; 128], home);
        assert_eq!(rid2, rid, "freed record reused");
        assert_eq!(db.record(rid2).lines().collect::<Vec<u64>>(), base_lines);
        assert_eq!(
            db.record(rid2).incarnation(),
            1,
            "incarnation survives reuse"
        );
        assert_eq!(db.record(rid2).version(), 0, "version resets on reuse");
        assert_eq!(db.record(rid2).read(0, 2), &[2, 2]);
        // keys_by_home bookkeeping follows.
        assert!(db.keys_at(t, home).contains(&8));
        assert!(!db.keys_at(t, home).contains(&7));
    }

    #[test]
    fn remove_missing_key_is_none() {
        let mut db = Database::new(1);
        let t = db.create_table("t", IndexKind::BTree);
        assert_eq!(db.remove(t, 5), None);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_keys_rejected() {
        let mut db = Database::new(1);
        let t = db.create_table("t", IndexKind::HashTable);
        db.insert(t, 1, vec![0u8; 64]);
        db.insert(t, 1, vec![0u8; 64]);
    }

    #[test]
    fn record_mutation_via_db() {
        let mut db = Database::new(1);
        let t = db.create_table("t", IndexKind::HashTable);
        let rid = db.insert(t, 9, vec![0u8; 64]);
        db.record_mut(rid).write_u64(0, 777);
        assert_eq!(db.record(rid).read_u64(0), 777);
    }

    #[test]
    fn commit_history_off_by_default_and_versions_when_on() {
        let mut db = Database::new(1);
        let t = db.create_table("t", IndexKind::HashTable);
        let a = db.insert(t, 1, vec![0u8; 64]);
        let b = db.insert(t, 2, vec![0u8; 64]);
        // Disabled: recording is a no-op.
        assert_eq!(db.note_commit(a, 10), 0);
        assert!(db.commit_history().is_empty());
        assert_eq!(db.commit_seq_of(a), 0);
        db.enable_commit_history();
        assert!(db.commit_history_enabled());
        assert_eq!(db.note_commit(a, 10), 1);
        assert_eq!(db.note_commit(b, 5), 1);
        assert_eq!(db.note_commit(a, 17), 2);
        assert_eq!(db.commit_seq_of(a), 2);
        assert_eq!(db.commit_seq_of(b), 1);
        let h = db.commit_history();
        assert_eq!(h.len(), 3);
        assert_eq!(
            h[2],
            CommitHistoryEntry {
                rid: a,
                seq: 2,
                value_after: 17
            }
        );
    }
}
