//! Database records and the augmented metadata layout of Fig 1.
//!
//! A record is the unit the *software* protocols operate on: the baseline
//! (and the HADES-H local path) keeps a version, a lock word and an
//! incarnation next to the data, and reads/writes whole records. HADES
//! itself ignores all of this metadata — it tracks raw cache lines — which
//! is exactly the point of the paper (Table I, row 2: "No record
//! versions").

use hades_sim::ids::NodeId;

/// Number of bytes per cache line; fixed across the reproduction.
pub const LINE_BYTES: usize = 64;

/// A stable handle to a record within a [`Database`].
///
/// [`Database`]: crate::db::Database
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

/// One database record: home placement, cache-line footprint, Fig 1
/// software metadata, and the actual value bytes.
#[derive(Debug, Clone)]
pub struct Record {
    home: NodeId,
    base_line: u64,
    num_lines: u32,
    /// Fig 1 `Version` — bumped by software protocols on every write.
    version: u64,
    /// Fig 1 `Lock` — holds an opaque owner token while locked.
    lock: Option<u64>,
    /// Fig 1 `Incarnation` — bumped when the record is freed/reused.
    incarnation: u32,
    data: Vec<u8>,
}

impl Record {
    /// Creates a record homed at `home`, occupying `num_lines` cache lines
    /// starting at `base_line`, holding `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not fit in `num_lines` lines or is empty.
    pub fn new(home: NodeId, base_line: u64, data: Vec<u8>) -> Self {
        assert!(!data.is_empty(), "record value must be nonempty");
        let num_lines = data.len().div_ceil(LINE_BYTES) as u32;
        Record {
            home,
            base_line,
            num_lines,
            version: 0,
            lock: None,
            incarnation: 0,
            data,
        }
    }

    /// The node this record is homed at.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Number of cache lines the record spans.
    pub fn num_lines(&self) -> u32 {
        self.num_lines
    }

    /// Value size in bytes.
    pub fn value_len(&self) -> usize {
        self.data.len()
    }

    /// All cache-line addresses of the record, in order.
    pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_lines as u64).map(move |i| self.base_line + i)
    }

    /// The cache lines covered by the byte range `off..off+len`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the value.
    pub fn lines_for_range(&self, off: usize, len: usize) -> Vec<u64> {
        assert!(len > 0, "empty range");
        assert!(off + len <= self.data.len(), "range beyond record");
        let first = off / LINE_BYTES;
        let last = (off + len - 1) / LINE_BYTES;
        (first..=last).map(|i| self.base_line + i as u64).collect()
    }

    /// Splits a write of `off..off+len` into (partially written lines,
    /// fully overwritten lines). Partial lines sit at the edges of the
    /// range; HADES must fetch only those before buffering the write
    /// (Table II, remote write).
    pub fn split_write_lines(&self, off: usize, len: usize) -> (Vec<u64>, Vec<u64>) {
        let covered = self.lines_for_range(off, len);
        let mut partial = Vec::new();
        let mut full = Vec::new();
        for &line in &covered {
            let idx = (line - self.base_line) as usize;
            let line_start = idx * LINE_BYTES;
            let line_end = (line_start + LINE_BYTES).min(self.data.len());
            if off <= line_start && off + len >= line_end {
                full.push(line);
            } else {
                partial.push(line);
            }
        }
        (partial, full)
    }

    /// Current Fig 1 version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current incarnation.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Bumps the version (software write path).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Bumps the incarnation (record freed and reused).
    pub fn bump_incarnation(&mut self) {
        self.incarnation += 1;
    }

    /// Replaces the value on record reuse: the version resets (a fresh
    /// logical record) but the incarnation persists so stale readers can
    /// detect the reuse.
    ///
    /// # Panics
    ///
    /// Panics if the new value needs a different number of cache lines.
    pub fn reset_value(&mut self, value: Vec<u8>) {
        let lines = value.len().div_ceil(LINE_BYTES) as u32;
        assert_eq!(lines, self.num_lines, "reuse requires matching geometry");
        self.data = value;
        self.version = 0;
        self.lock = None;
    }

    /// Attempts to take the record lock for `owner` (the CAS of the
    /// validation phase). Re-locking by the current owner succeeds.
    pub fn try_lock(&mut self, owner: u64) -> bool {
        match self.lock {
            None => {
                self.lock = Some(owner);
                true
            }
            Some(o) => o == owner,
        }
    }

    /// Whether the record is locked (by anyone).
    pub fn is_locked(&self) -> bool {
        self.lock.is_some()
    }

    /// Whether the record is locked by `owner`.
    pub fn locked_by(&self, owner: u64) -> bool {
        self.lock == Some(owner)
    }

    /// Releases the lock if held by `owner`; no-op otherwise.
    pub fn unlock(&mut self, owner: u64) {
        if self.lock == Some(owner) {
            self.lock = None;
        }
    }

    /// Reads `len` bytes at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the value.
    pub fn read(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    /// Overwrites bytes at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the value.
    pub fn write(&mut self, off: usize, bytes: &[u8]) {
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads a little-endian `u64` field at byte offset `off`.
    pub fn read_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` field at byte offset `off`.
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Adds `delta` (wrapping) to the `u64` field at `off` and returns the
    /// new value — the read-modify-write at the heart of Smallbank.
    pub fn add_u64(&mut self, off: usize, delta: i64) -> u64 {
        let v = self.read_u64(off).wrapping_add(delta as u64);
        self.write_u64(off, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bytes: usize) -> Record {
        Record::new(NodeId(1), 1000, vec![0u8; bytes])
    }

    #[test]
    fn line_footprint() {
        assert_eq!(record(1).num_lines(), 1);
        assert_eq!(record(64).num_lines(), 1);
        assert_eq!(record(65).num_lines(), 2);
        assert_eq!(record(128).num_lines(), 2);
        let r = record(130);
        assert_eq!(r.num_lines(), 3);
        assert_eq!(r.lines().collect::<Vec<_>>(), vec![1000, 1001, 1002]);
    }

    #[test]
    fn lines_for_range_covers_exactly() {
        let r = record(256); // 4 lines
        assert_eq!(r.lines_for_range(0, 64), vec![1000]);
        assert_eq!(r.lines_for_range(60, 8), vec![1000, 1001]);
        assert_eq!(r.lines_for_range(64, 192), vec![1001, 1002, 1003]);
    }

    #[test]
    fn split_write_identifies_partial_edges() {
        let r = record(256); // 4 lines
                             // Write bytes 32..224: line 1000 partial, 1001-1002 full, 1003 partial.
        let (partial, full) = r.split_write_lines(32, 192);
        assert_eq!(partial, vec![1000, 1003]);
        assert_eq!(full, vec![1001, 1002]);
        // A fully aligned whole-record write has no partial lines.
        let (partial, full) = r.split_write_lines(0, 256);
        assert!(partial.is_empty());
        assert_eq!(full.len(), 4);
        // A small field write is all partial.
        let (partial, full) = r.split_write_lines(8, 8);
        assert_eq!(partial, vec![1000]);
        assert!(full.is_empty());
    }

    #[test]
    fn short_tail_line_counts_as_full_when_fully_covered() {
        let r = record(100); // 2 lines; second line holds bytes 64..100
        let (partial, full) = r.split_write_lines(0, 100);
        assert!(partial.is_empty(), "whole-record write covers the tail");
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn version_and_lock_lifecycle() {
        let mut r = record(64);
        assert_eq!(r.version(), 0);
        r.bump_version();
        assert_eq!(r.version(), 1);
        assert!(r.try_lock(7));
        assert!(r.try_lock(7), "re-entrant for same owner");
        assert!(!r.try_lock(8));
        assert!(r.locked_by(7));
        r.unlock(8); // wrong owner: no-op
        assert!(r.is_locked());
        r.unlock(7);
        assert!(!r.is_locked());
    }

    #[test]
    fn value_read_write() {
        let mut r = record(64);
        r.write(3, &[1, 2, 3]);
        assert_eq!(r.read(3, 3), &[1, 2, 3]);
        r.write_u64(8, 0xDEAD);
        assert_eq!(r.read_u64(8), 0xDEAD);
        assert_eq!(r.add_u64(8, -0xAD), 0xDE00);
        assert_eq!(r.add_u64(8, 1), 0xDE01);
    }

    #[test]
    #[should_panic(expected = "beyond record")]
    fn range_checked() {
        let r = record(64);
        let _ = r.lines_for_range(60, 10);
    }
}
