//! # hades-storage — records, key-value stores, and the partitioned database
//!
//! The storage substrate of the HADES (ISCA 2024) reproduction:
//!
//! * [`record::Record`] — the Fig 1 augmented record: value bytes plus the
//!   software metadata (version, lock, incarnation) that the FaRM-style
//!   baseline and the HADES-H local path rely on, with helpers for mapping
//!   byte ranges to cache lines (HADES operates at line granularity).
//! * [`index`] — the four store shapes of the paper's evaluation, built
//!   from scratch: open-addressing [`index::HashTable`] (HT), a
//!   [`index::SkipList`] (Map), an in-memory [`index::BTree`], and a
//!   [`index::BPlusTree`] with linked leaves. Lookups report traversal
//!   depth for index-walk timing.
//! * [`db::Database`] — tables over a uniform static hash partition
//!   (Section VII), per-node cache-line slabs, and locality-aware key
//!   sampling for the Fig 12b experiment.
//!
//! # Examples
//!
//! ```
//! use hades_storage::{db::Database, index::IndexKind};
//!
//! let mut db = Database::new(5);
//! let accounts = db.create_table("accounts", IndexKind::BPlusTree);
//! let rid = db.insert(accounts, 1001, vec![0u8; 128]);
//! db.record_mut(rid).write_u64(0, 5_000); // initial balance
//! assert_eq!(db.record(rid).read_u64(0), 5_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod db;
pub mod index;
pub mod record;

pub use db::{uniform_home, Database, TableId};
pub use index::{IndexKind, KvIndex, Lookup};
pub use record::{Record, RecordId, LINE_BYTES};
