//! Chrome `trace_event` exporter (Perfetto-loadable).
//!
//! Maps the simulator's event stream onto the [Trace Event Format]:
//! nodes become processes (`pid`), execution slots become threads
//! (`tid`), lifecycle phases become duration (`B`/`E`) events, and
//! everything else becomes instant (`i`) events. Simulated [`Cycles`]
//! map to trace timestamps in microseconds (0.5 ns per cycle at the
//! modeled 2 GHz), so a whole distributed commit is visually
//! inspectable on a real time axis in `ui.perfetto.dev`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Categories emitted: `txn`, `phase`, `net`, `bloom`, `lock`, `fault`,
//! `recovery`, `overload`, `membership`, `migration`.
//!
//! Traces containing phase events additionally carry a synthetic
//! "cluster phases" process (pid [`PHASE_PID`]) with one counter track
//! per phase (`open.exec`, `open.lock`, …) plotting how many slots
//! cluster-wide have that phase open over time — the Perfetto view of
//! the phase profiler's attribution (DESIGN.md §12).

use crate::event::{EventKind, Phase, TraceEvent, NO_SLOT};
use crate::json::Json;
use hades_sim::time::Cycles;
use std::collections::BTreeMap;

/// Thread id used for node-scoped events (NIC / fabric / directory),
/// placed after any plausible slot id.
const NODE_TID: u64 = 999;

/// Synthetic process id for the cluster-wide phase counter tracks,
/// placed after any plausible node id.
const PHASE_PID: u64 = 1000;

fn ts(at: Cycles) -> Json {
    // Microseconds with sub-µs fraction preserved (0.5 ns resolution).
    Json::Num(at.as_micros())
}

fn base(ev: &TraceEvent, ph: &str, name: &str) -> Vec<(String, Json)> {
    let tid = if ev.slot == NO_SLOT {
        NODE_TID
    } else {
        ev.slot as u64
    };
    vec![
        ("name".into(), Json::str(name)),
        ("cat".into(), Json::str(ev.kind.category())),
        ("ph".into(), Json::str(ph)),
        ("ts".into(), ts(ev.at)),
        ("pid".into(), Json::UInt(ev.node as u64)),
        ("tid".into(), Json::UInt(tid)),
    ]
}

fn instant(ev: &TraceEvent, name: &str, args: Vec<(String, Json)>) -> Json {
    let mut m = base(ev, "i", name);
    m.push(("s".into(), Json::str("t"))); // thread-scoped instant
    if !args.is_empty() {
        m.push(("args".into(), Json::Obj(args)));
    }
    Json::Obj(m)
}

fn duration(ev: &TraceEvent, ph: &str, name: &str) -> Json {
    Json::Obj(base(ev, ph, name))
}

/// A `C` (counter) sample on the cluster-wide phase track.
fn phase_counter(at: Cycles, phase: Phase, open: u64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(format!("open.{}", phase.label()))),
        ("cat".into(), Json::str("phase")),
        ("ph".into(), Json::str("C")),
        ("ts".into(), ts(at)),
        ("pid".into(), Json::UInt(PHASE_PID)),
        (
            "args".into(),
            Json::Obj(vec![("open".into(), Json::UInt(open))]),
        ),
    ])
}

/// Emits the `E` event and counter sample for one popped phase.
fn pop_phase(out: &mut Vec<Json>, ev: &TraceEvent, p: Phase, counts: &mut [u64; 4]) {
    out.push(duration(ev, "E", p.label()));
    let c = &mut counts[p as usize];
    *c = c.saturating_sub(1);
    out.push(phase_counter(ev.at, p, *c));
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut m = vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::UInt(pid)),
    ];
    if let Some(tid) = tid {
        m.push(("tid".into(), Json::UInt(tid)));
    }
    m.push((
        "args".into(),
        Json::Obj(vec![("name".into(), Json::str(value))]),
    ));
    Json::Obj(m)
}

/// Renders a recorded event stream as a complete Chrome trace JSON
/// document.
///
/// The exporter is defensive about phase nesting: if a transaction
/// aborts (or a new one begins) while phases are still open on its
/// slot, the open phases are closed at that point so the `B`/`E` pairs
/// always balance and Perfetto renders clean nested slices.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out: Vec<Json> = Vec::new();
    // Stack of open phases per (node, slot).
    let mut open: BTreeMap<(u16, u32), Vec<Phase>> = BTreeMap::new();
    // (pid, tid) pairs seen, for thread-name metadata.
    let mut seen: BTreeMap<(u16, u64), ()> = BTreeMap::new();
    // Cluster-wide open-phase counts feeding the counter tracks.
    let mut counts = [0u64; 4];

    let close_open =
        |out: &mut Vec<Json>, ev: &TraceEvent, stack: &mut Vec<Phase>, counts: &mut [u64; 4]| {
            while let Some(p) = stack.pop() {
                pop_phase(out, ev, p, counts);
            }
        };

    for ev in events {
        let tid = if ev.slot == NO_SLOT {
            NODE_TID
        } else {
            ev.slot as u64
        };
        seen.entry((ev.node, tid)).or_insert(());
        let key = (ev.node, ev.slot);
        match ev.kind {
            EventKind::TxnBegin { attempt } => {
                if let Some(stack) = open.get_mut(&key) {
                    close_open(&mut out, ev, stack, &mut counts);
                }
                out.push(instant(
                    ev,
                    "txn_begin",
                    vec![("attempt".into(), Json::UInt(attempt as u64))],
                ));
            }
            EventKind::PhaseBegin(p) => {
                open.entry(key).or_default().push(p);
                out.push(duration(ev, "B", p.label()));
                counts[p as usize] += 1;
                out.push(phase_counter(ev.at, p, counts[p as usize]));
            }
            EventKind::PhaseEnd(p) => {
                // Close up to and including the matching open phase.
                if let Some(stack) = open.get_mut(&key) {
                    if let Some(pos) = stack.iter().rposition(|&q| q == p) {
                        while stack.len() > pos {
                            let q = stack.pop().expect("non-empty stack");
                            pop_phase(&mut out, ev, q, &mut counts);
                        }
                    }
                }
            }
            EventKind::TxnCommit => {
                if let Some(stack) = open.get_mut(&key) {
                    close_open(&mut out, ev, stack, &mut counts);
                }
                out.push(instant(ev, "txn_commit", vec![]));
            }
            EventKind::TxnAbort { reason } => {
                if let Some(stack) = open.get_mut(&key) {
                    close_open(&mut out, ev, stack, &mut counts);
                }
                out.push(instant(
                    ev,
                    "txn_abort",
                    vec![("reason".into(), Json::str(reason))],
                ));
            }
            EventKind::VerbSend { verb, dst, bytes } => {
                out.push(instant(
                    ev,
                    &format!("send:{}", verb.label()),
                    vec![
                        ("dst".into(), Json::UInt(dst as u64)),
                        ("bytes".into(), Json::UInt(bytes as u64)),
                    ],
                ));
            }
            EventKind::VerbRecv { verb, src, bytes } => {
                out.push(instant(
                    ev,
                    &format!("recv:{}", verb.label()),
                    vec![
                        ("src".into(), Json::UInt(src as u64)),
                        ("bytes".into(), Json::UInt(bytes as u64)),
                    ],
                ));
            }
            EventKind::BloomInsert { site } => {
                out.push(instant(
                    ev,
                    "bloom_insert",
                    vec![("site".into(), Json::str(site.label()))],
                ));
            }
            EventKind::BloomProbe { hit } => {
                out.push(instant(
                    ev,
                    "bloom_probe",
                    vec![("hit".into(), Json::Bool(hit))],
                ));
            }
            EventKind::BloomFalsePositive => {
                out.push(instant(ev, "bloom_false_positive", vec![]));
            }
            EventKind::LockAcquire { owner } => {
                out.push(instant(
                    ev,
                    "lock_acquire",
                    vec![("owner".into(), Json::UInt(owner))],
                ));
            }
            EventKind::LockStall { holder } => {
                out.push(instant(
                    ev,
                    "lock_stall",
                    vec![("holder".into(), Json::UInt(holder))],
                ));
            }
            EventKind::FaultInjected { fault } => {
                let mut args = Vec::new();
                if let Some(verb) = fault.verb() {
                    args.push(("verb".into(), Json::str(verb.label())));
                }
                out.push(instant(ev, &format!("fault:{}", fault.label()), args));
            }
            EventKind::Recovery { action } => {
                out.push(instant(ev, &format!("recovery:{}", action.label()), vec![]));
            }
            EventKind::AdmissionThrottled => {
                out.push(instant(ev, "admission_throttled", vec![]));
            }
            EventKind::DegradedCommit => {
                out.push(instant(ev, "degraded_commit", vec![]));
            }
            EventKind::StarvationBoost { attempt } => {
                out.push(instant(
                    ev,
                    "starvation_boost",
                    vec![("attempt".into(), Json::UInt(attempt as u64))],
                ));
            }
            EventKind::EpochChange { epoch } => {
                out.push(instant(
                    ev,
                    "epoch_change",
                    vec![("epoch".into(), Json::UInt(epoch))],
                ));
            }
            EventKind::Promotion {
                partition,
                new_primary,
            } => {
                out.push(instant(
                    ev,
                    "promotion",
                    vec![
                        ("partition".into(), Json::UInt(partition as u64)),
                        ("new_primary".into(), Json::UInt(new_primary as u64)),
                    ],
                ));
            }
            EventKind::VerbFenced { verb } => {
                out.push(instant(
                    ev,
                    &format!("fenced:{}", verb.label()),
                    vec![("verb".into(), Json::str(verb.label()))],
                ));
            }
            EventKind::BatchFlushed { dst, size } => {
                out.push(instant(
                    ev,
                    "batch_flushed",
                    vec![
                        ("dst".into(), Json::UInt(dst as u64)),
                        ("size".into(), Json::UInt(size as u64)),
                    ],
                ));
            }
            EventKind::BatchCoalesced { dst } => {
                out.push(instant(
                    ev,
                    "batch_coalesced",
                    vec![("dst".into(), Json::UInt(dst as u64))],
                ));
            }
            EventKind::MigrationStart { partition, dst } => {
                out.push(instant(
                    ev,
                    "migration_start",
                    vec![
                        ("partition".into(), Json::UInt(partition as u64)),
                        ("dst".into(), Json::UInt(dst as u64)),
                    ],
                ));
            }
            EventKind::ChunkMigrated { partition, chunk } => {
                out.push(instant(
                    ev,
                    "chunk_migrated",
                    vec![
                        ("partition".into(), Json::UInt(partition as u64)),
                        ("chunk".into(), Json::UInt(chunk as u64)),
                    ],
                ));
            }
            EventKind::MigrationCutover { epoch } => {
                out.push(instant(
                    ev,
                    "migration_cutover",
                    vec![("epoch".into(), Json::UInt(epoch))],
                ));
            }
            EventKind::LinkCut { src, dst } => {
                out.push(instant(
                    ev,
                    "link_cut",
                    vec![
                        ("src".into(), Json::UInt(src as u64)),
                        ("dst".into(), Json::UInt(dst as u64)),
                    ],
                ));
            }
            EventKind::LinkHealed { src, dst } => {
                out.push(instant(
                    ev,
                    "link_healed",
                    vec![
                        ("src".into(), Json::UInt(src as u64)),
                        ("dst".into(), Json::UInt(dst as u64)),
                    ],
                ));
            }
            EventKind::SelfFenced { node } => {
                out.push(instant(
                    ev,
                    "self_fenced",
                    vec![("node".into(), Json::UInt(node as u64))],
                ));
            }
            EventKind::QuorumLost { node } => {
                out.push(instant(
                    ev,
                    "quorum_lost",
                    vec![("node".into(), Json::UInt(node as u64))],
                ));
            }
        }
    }

    // Close anything still open at the final timestamp.
    if let Some(last) = events.last() {
        let keys: Vec<(u16, u32)> = open.keys().copied().collect();
        for key in keys {
            let stack = open.get_mut(&key).expect("key just listed");
            while let Some(p) = stack.pop() {
                let ev = TraceEvent {
                    at: last.at,
                    node: key.0,
                    slot: key.1,
                    kind: EventKind::PhaseEnd(p),
                };
                pop_phase(&mut out, &ev, p, &mut counts);
            }
        }
    }

    // Process/thread naming metadata so Perfetto shows meaningful labels.
    let mut meta: Vec<Json> = Vec::new();
    let mut named_pids: BTreeMap<u16, ()> = BTreeMap::new();
    for &(pid, tid) in seen.keys() {
        if named_pids.insert(pid, ()).is_none() {
            meta.push(metadata(
                "process_name",
                pid as u64,
                None,
                &format!("node{pid}"),
            ));
        }
        let tname = if tid == NODE_TID {
            "nic/directory".to_string()
        } else {
            format!("slot{tid}")
        };
        meta.push(metadata("thread_name", pid as u64, Some(tid), &tname));
    }
    if events
        .iter()
        .any(|e| matches!(e.kind, EventKind::PhaseBegin(_)))
    {
        meta.push(metadata("process_name", PHASE_PID, None, "cluster phases"));
    }
    meta.extend(out);

    Json::obj()
        .field("traceEvents", Json::Arr(meta))
        .field("displayTimeUnit", "ns")
        .build()
        .render()
}

/// Thread-id base for the per-transaction tail tracks emitted by
/// [`span_chrome_trace`]; each ranked transaction gets two tids (phase
/// slices and verb rounds), placed after every other track family.
const SPAN_TID_BASE: u64 = 3000;

/// Renders a span log's top-`k` slowest committed transactions as real
/// per-transaction Chrome tracks: one slice track of phase segments
/// (`X` complete events), one of verb rounds, abort instants, and a
/// flow arrow from each abort to the retry it caused. All tracks live
/// on a synthetic "tail txns" process so they sit next to — not inside —
/// the per-slot event tracks of [`chrome_trace`].
pub fn span_chrome_trace(log: &crate::span::SpanLog, k: usize) -> String {
    /// Synthetic process id for the tail tracks.
    const SPAN_PID: u64 = 1001;
    let x = |name: &str, cat: &str, start: Cycles, end: Cycles, tid: u64| {
        Json::Obj(vec![
            ("name".into(), Json::str(name)),
            ("cat".into(), Json::str(cat)),
            ("ph".into(), Json::str("X")),
            ("ts".into(), ts(start)),
            (
                "dur".into(),
                Json::Num(end.saturating_sub(start).as_micros()),
            ),
            ("pid".into(), Json::UInt(SPAN_PID)),
            ("tid".into(), Json::UInt(tid)),
        ])
    };
    let mut out: Vec<Json> = Vec::new();
    out.push(metadata("process_name", SPAN_PID, None, "tail txns"));
    let mut flow_id = 0u64;
    for (rank, txn) in log.top_slowest(k).iter().enumerate() {
        let seg_tid = SPAN_TID_BASE + 2 * rank as u64;
        let round_tid = seg_tid + 1;
        out.push(metadata(
            "thread_name",
            SPAN_PID,
            Some(seg_tid),
            &format!("tail#{rank} n{} s{} phases", txn.node, txn.slot),
        ));
        out.push(metadata(
            "thread_name",
            SPAN_PID,
            Some(round_tid),
            &format!("tail#{rank} n{} s{} rounds", txn.node, txn.slot),
        ));
        let mut segs: Vec<Json> = txn
            .segments
            .iter()
            .map(|s| x(s.phase.label(), "span", s.start, s.end, seg_tid))
            .collect();
        for a in &txn.aborts {
            segs.push(Json::Obj(vec![
                ("name".into(), Json::str(format!("abort:{}", a.reason))),
                ("cat".into(), Json::str("span")),
                ("ph".into(), Json::str("i")),
                ("ts".into(), ts(a.at)),
                ("pid".into(), Json::UInt(SPAN_PID)),
                ("tid".into(), Json::UInt(seg_tid)),
                ("s".into(), Json::str("t")),
            ]));
            // Flow arrow from the abort to the retry: find the first
            // non-backoff segment starting at or after the abort.
            if let Some(retry) = txn
                .segments
                .iter()
                .find(|s| s.start >= a.at && s.phase != crate::profile::ProfPhase::Backoff)
            {
                let flow = |ph: &str, at: Cycles| {
                    Json::Obj(vec![
                        ("name".into(), Json::str("retry")),
                        ("cat".into(), Json::str("span")),
                        ("ph".into(), Json::str(ph)),
                        ("id".into(), Json::UInt(flow_id)),
                        ("ts".into(), ts(at)),
                        ("pid".into(), Json::UInt(SPAN_PID)),
                        ("tid".into(), Json::UInt(seg_tid)),
                    ])
                };
                segs.push(flow("s", a.at));
                segs.push(flow("f", retry.start));
                flow_id += 1;
            }
        }
        // Keep every track's timestamps monotonic.
        segs.sort_by(|a, b| {
            let t = |j: &Json| j.get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0);
            t(a).partial_cmp(&t(b)).expect("finite timestamps")
        });
        out.extend(segs);
        let mut rounds: Vec<Json> = txn
            .rounds
            .iter()
            .map(|r| {
                x(
                    &format!("{}x{}", r.verb.label(), r.peers),
                    "round",
                    r.start,
                    r.end,
                    round_tid,
                )
            })
            .collect();
        rounds.sort_by(|a, b| {
            let t = |j: &Json| j.get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0);
            t(a).partial_cmp(&t(b)).expect("finite timestamps")
        });
        out.extend(rounds);
    }
    Json::obj()
        .field("traceEvents", Json::Arr(out))
        .field("displayTimeUnit", "ns")
        .build()
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Verb;

    fn ev(at: u64, node: u16, slot: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: Cycles::new(at),
            node,
            slot,
            kind,
        }
    }

    #[test]
    fn phases_emit_balanced_b_e_pairs() {
        let events = [
            ev(0, 0, 0, EventKind::TxnBegin { attempt: 1 }),
            ev(0, 0, 0, EventKind::PhaseBegin(Phase::Exec)),
            ev(100, 0, 0, EventKind::PhaseEnd(Phase::Exec)),
            ev(100, 0, 0, EventKind::PhaseBegin(Phase::Commit)),
            ev(300, 0, 0, EventKind::TxnCommit),
        ];
        let s = chrome_trace(&events);
        assert_eq!(s.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(s.matches("\"ph\":\"E\"").count(), 2);
        assert!(s.contains("\"ts\":0.05")); // 100 cycles = 0.05 us
    }

    #[test]
    fn abort_closes_open_phases() {
        let events = [
            ev(0, 0, 3, EventKind::PhaseBegin(Phase::Exec)),
            ev(50, 0, 3, EventKind::TxnAbort { reason: "conflict" }),
        ];
        let s = chrome_trace(&events);
        assert_eq!(s.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(s.matches("\"ph\":\"E\"").count(), 1);
        assert!(s.contains("conflict"));
    }

    #[test]
    fn has_four_plus_categories_and_metadata() {
        let events = [
            ev(0, 0, 0, EventKind::TxnBegin { attempt: 1 }),
            ev(1, 0, 0, EventKind::PhaseBegin(Phase::Exec)),
            ev(
                2,
                0,
                NO_SLOT,
                EventKind::VerbSend {
                    verb: Verb::Read,
                    dst: 1,
                    bytes: 64,
                },
            ),
            ev(3, 1, NO_SLOT, EventKind::BloomProbe { hit: true }),
            ev(4, 1, NO_SLOT, EventKind::LockStall { holder: 9 }),
            ev(5, 0, 0, EventKind::TxnCommit),
        ];
        let s = chrome_trace(&events);
        for cat in ["txn", "phase", "net", "bloom", "lock"] {
            assert!(s.contains(&format!("\"cat\":\"{cat}\"")), "missing {cat}");
        }
        assert!(s.contains("process_name"));
        assert!(s.contains("thread_name"));
        assert!(s.contains("nic/directory"));
    }

    #[test]
    fn phase_counter_track_follows_open_phases() {
        let events = [
            ev(0, 0, 0, EventKind::PhaseBegin(Phase::Exec)),
            ev(5, 1, 4, EventKind::PhaseBegin(Phase::Exec)),
            ev(100, 0, 0, EventKind::PhaseEnd(Phase::Exec)),
            ev(150, 1, 4, EventKind::PhaseEnd(Phase::Exec)),
        ];
        let s = chrome_trace(&events);
        // Two slots open and close exec: counter goes 1, 2, 1, 0.
        assert_eq!(s.matches("\"ph\":\"C\"").count(), 4);
        assert_eq!(s.matches("\"name\":\"open.exec\"").count(), 4);
        assert!(s.contains("{\"open\":2}"));
        assert!(s.contains("{\"open\":0}"));
        assert!(s.contains("cluster phases"));
    }

    #[test]
    fn counter_track_absent_without_phase_events() {
        let events = [
            ev(0, 0, 0, EventKind::TxnBegin { attempt: 1 }),
            ev(5, 0, 0, EventKind::TxnCommit),
        ];
        let s = chrome_trace(&events);
        assert_eq!(s.matches("\"ph\":\"C\"").count(), 0);
        assert!(!s.contains("cluster phases"));
    }

    #[test]
    fn span_trace_renders_tail_tracks() {
        use crate::profile::ProfPhase;
        use crate::span::SpanLog;
        let mut log = SpanLog::new(1);
        log.slot_start(0, 2, 5, Cycles::new(100));
        log.round_begin(0, Verb::Intend, 2, Cycles::new(150));
        log.round_end(0, Cycles::new(190));
        log.slot_abort(0, "wrtx-conflict", Cycles::new(200));
        log.slot_enter(0, ProfPhase::Exec, Cycles::new(260));
        log.slot_enter(0, ProfPhase::Commit, Cycles::new(320));
        log.slot_commit(0, Cycles::new(400), true);
        let s = span_chrome_trace(&log, 10);
        let doc = Json::parse(&s).expect("valid JSON");
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("cat").and_then(|c| c.as_str()) == Some("span")
        }));
        assert!(s.contains("abort:wrtx-conflict"));
        assert!(s.contains("intendx2"));
        assert!(s.contains("tail txns"));
        // Flow arrow from the abort to the retry.
        assert!(s.contains("\"ph\":\"s\""));
        assert!(s.contains("\"ph\":\"f\""));
    }
}
