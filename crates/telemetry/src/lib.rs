//! # hades-telemetry — structured tracing and metrics for the HADES reproduction
//!
//! The paper's evaluation (Figs 3, 9–15, Table IV) is built on
//! fine-grained accounting: per-phase cycle breakdowns, abort causes,
//! Bloom-filter false positives, NIC verb traffic. This crate is the
//! substrate that makes the same accounting available from the
//! reproduction's simulators:
//!
//! * [`sink::TraceSink`] / [`sink::Tracer`] — a zero-cost-when-disabled
//!   tracing handle every simulator component carries. Disabled (the
//!   default) it is one branch per event site; enabled, all components
//!   share one deterministic event stream.
//! * [`event::TraceEvent`] — the event taxonomy: transaction lifecycle
//!   (begin / phases / commit / abort-with-reason), NIC verb send/recv,
//!   Bloom-filter insert/probe/false-positive, and Locking-Buffer
//!   acquire/stall.
//! * [`registry::MetricsRegistry`] — named counters and cycle
//!   histograms, derivable wholesale from a recorded stream.
//! * [`profile::PhaseProfile`] — the config-gated phase profiler:
//!   per-transaction sim-time attribution across execution / lock /
//!   validate / commit / replication / backoff, plus per-verb fabric
//!   time (DESIGN.md §12).
//! * [`span::SpanLog`] — config-gated causal transaction spans: every
//!   attempt's phase segments, verb rounds, and abort causes, with a
//!   critical-path analyzer over the top-K slowest / most-retried
//!   committed transactions (DESIGN.md §13).
//! * [`timeseries::TimeSeries`] — config-gated windowed time-series:
//!   per-node throughput, windowed p99, hardware occupancy, and
//!   overload/failover event counts per fixed sim-time window.
//! * [`chrome::chrome_trace`] — Chrome `trace_event` exporter; open the
//!   output in [ui.perfetto.dev](https://ui.perfetto.dev) to inspect a
//!   whole distributed commit on a real time axis.
//!   [`chrome::span_chrome_trace`] renders a span log's tail
//!   transactions as per-transaction flow/slice tracks.
//! * [`jsonl`] — line-delimited JSON export of events and metrics.
//!
//! Everything renders through the dependency-free [`json::Json`]
//! builder, and every export is byte-deterministic for a fixed
//! `SimConfig` + seed (see `tests/trace_determinism.rs`).

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use event::{EventKind, FilterSite, Phase, TraceEvent, Verb, VerbCounts, NO_SLOT};
pub use profile::{PhaseProfile, ProfPhase};
pub use registry::MetricsRegistry;
pub use sink::{MemorySink, NullSink, TraceSink, Tracer};
pub use span::{SpanLog, TxnSpan};
pub use timeseries::{Occupancy, TimeSeries};
