//! JSONL (one JSON object per line) exporters.
//!
//! Two things are exported this way: raw trace streams (one event per
//! line, suitable for `grep`/`jq` pipelines and the byte-identical
//! determinism guarantee) and per-run metric records (one run per line,
//! the `BENCH_*.json`-style trajectory format).

use crate::event::{EventKind, TraceEvent, NO_SLOT};
use crate::json::Json;

/// Renders one trace event as a single-line JSON object.
pub fn event_json(ev: &TraceEvent) -> Json {
    let mut b = Json::obj()
        .field("cy", ev.at.get())
        .field("node", ev.node as u64);
    if ev.slot != NO_SLOT {
        b = b.field("slot", ev.slot as u64);
    }
    b = b
        .field("cat", ev.kind.category())
        .field("ev", ev.kind.name());
    match ev.kind {
        EventKind::TxnBegin { attempt } => b = b.field("attempt", attempt as u64),
        EventKind::PhaseBegin(p) | EventKind::PhaseEnd(p) => b = b.field("phase", p.label()),
        EventKind::TxnAbort { reason } => b = b.field("reason", reason),
        EventKind::VerbSend { verb, dst, bytes } => {
            b = b
                .field("verb", verb.label())
                .field("dst", dst as u64)
                .field("bytes", bytes as u64);
        }
        EventKind::VerbRecv { verb, src, bytes } => {
            b = b
                .field("verb", verb.label())
                .field("src", src as u64)
                .field("bytes", bytes as u64);
        }
        EventKind::BloomInsert { site } => b = b.field("site", site.label()),
        EventKind::BloomProbe { hit } => b = b.field("hit", Json::Bool(hit)),
        EventKind::LockAcquire { owner } => b = b.field("owner", owner),
        EventKind::LockStall { holder } => b = b.field("holder", holder),
        EventKind::FaultInjected { fault } => {
            b = b.field("fault", fault.label());
            if let Some(verb) = fault.verb() {
                b = b.field("verb", verb.label());
            }
        }
        EventKind::Recovery { action } => b = b.field("action", action.label()),
        EventKind::StarvationBoost { attempt } => b = b.field("attempt", attempt as u64),
        EventKind::EpochChange { epoch } => b = b.field("epoch", epoch),
        EventKind::Promotion {
            partition,
            new_primary,
        } => {
            b = b
                .field("partition", partition as u64)
                .field("new_primary", new_primary as u64);
        }
        EventKind::VerbFenced { verb } => b = b.field("verb", verb.label()),
        EventKind::BatchFlushed { dst, size } => {
            b = b.field("dst", dst as u64).field("size", size as u64);
        }
        EventKind::BatchCoalesced { dst } => b = b.field("dst", dst as u64),
        EventKind::MigrationStart { partition, dst } => {
            b = b
                .field("partition", partition as u64)
                .field("dst", dst as u64);
        }
        EventKind::ChunkMigrated { partition, chunk } => {
            b = b
                .field("partition", partition as u64)
                .field("chunk", chunk as u64);
        }
        EventKind::MigrationCutover { epoch } => b = b.field("epoch", epoch),
        EventKind::LinkCut { src, dst } | EventKind::LinkHealed { src, dst } => {
            b = b.field("src", src as u64);
            b = b.field("dst", dst as u64);
        }
        EventKind::SelfFenced { node } | EventKind::QuorumLost { node } => {
            b = b.field("node", node as u64)
        }
        EventKind::TxnCommit
        | EventKind::BloomFalsePositive
        | EventKind::AdmissionThrottled
        | EventKind::DegradedCommit => {}
    }
    b.build()
}

/// Renders a whole event stream as JSONL (trailing newline included).
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(ev).render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Verb};
    use hades_sim::time::Cycles;

    #[test]
    fn one_line_per_event_and_stable_fields() {
        let events = [
            TraceEvent {
                at: Cycles::new(5),
                node: 1,
                slot: 2,
                kind: EventKind::PhaseBegin(Phase::Validate),
            },
            TraceEvent {
                at: Cycles::new(9),
                node: 1,
                slot: NO_SLOT,
                kind: EventKind::VerbSend {
                    verb: Verb::Ack,
                    dst: 0,
                    bytes: 64,
                },
            },
        ];
        let s = events_to_jsonl(&events);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"cy\":5,\"node\":1,\"slot\":2,\"cat\":\"phase\",\"ev\":\"phase_begin\",\"phase\":\"validate\"}"
        );
        // Node-scoped events omit the slot field entirely.
        assert!(!lines[1].contains("slot"));
        assert!(lines[1].contains("\"verb\":\"ack\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let ev = TraceEvent {
            at: Cycles::new(1),
            node: 0,
            slot: 0,
            kind: EventKind::TxnAbort { reason: "fp" },
        };
        assert_eq!(events_to_jsonl(&[ev]), events_to_jsonl(&[ev]));
    }
}
