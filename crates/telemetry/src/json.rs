//! A minimal JSON document builder and parser.
//!
//! The workspace deliberately has no third-party serialization
//! dependency, so exports are assembled with this small value type and
//! rendered compactly. Object members keep insertion order, which makes
//! rendered output deterministic — a requirement for the byte-identical
//! trace guarantees tested in `tests/trace_determinism.rs`. The
//! matching [`Json::parse`] reads documents back (used by
//! `bench --compare` to diff committed `BENCH_*.json` baselines).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without a decimal point).
    Int(i64),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A float, rendered with Rust's shortest-round-trip formatting.
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object builder.
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Shorthand for `Json::Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document.
    ///
    /// Integers without sign or fraction parse as [`Json::UInt`], other
    /// integers as [`Json::Int`], and anything with a fraction or
    /// exponent as [`Json::Num`] — matching what [`Json::render`] emits,
    /// so `parse(render(x))` reproduces `x` for documents this crate
    /// writes. Duplicate object keys are kept in order (last one wins in
    /// [`Json::get`]).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object (last occurrence), or `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (`Int` / `UInt` / `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

/// Incremental object builder preserving member order.
#[derive(Debug, Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Appends a member.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.0.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

/// Writes `s` as a quoted, escaped JSON string into `out`.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over raw bytes (input is valid UTF-8 by
/// construction, and multi-byte characters only appear inside strings).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // The input slice came from a &str, so this span is valid UTF-8.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates never appear in this crate's output;
                            // map unpaired ones to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::obj()
            .field("z", 1u64)
            .field("a", Json::Arr(vec![Json::Null, Json::Bool(false)]))
            .build();
        assert_eq!(j.render(), "{\"z\":1,\"a\":[null,false]}");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj()
            .field("schema", "hades-bench/v1")
            .field("n", 42u64)
            .field("neg", Json::Int(-7))
            .field("rate", 0.125f64)
            .field(
                "cells",
                Json::Arr(vec![Json::obj()
                    .field("name", "TATP")
                    .field("ok", Json::Bool(true))
                    .field("none", Json::Null)
                    .build()]),
            )
            .build();
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\" : [ 1 , 2.5 , \"x\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::parse("{\"s\":\"x\",\"n\":3}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }
}
