//! A minimal JSON document builder.
//!
//! The workspace deliberately has no third-party serialization
//! dependency, so exports are assembled with this small value type and
//! rendered compactly. Object members keep insertion order, which makes
//! rendered output deterministic — a requirement for the byte-identical
//! trace guarantees tested in `tests/trace_determinism.rs`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (rendered without a decimal point).
    Int(i64),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A float, rendered with Rust's shortest-round-trip formatting.
    /// Non-finite values render as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object builder.
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Shorthand for `Json::Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

/// Incremental object builder preserving member order.
#[derive(Debug, Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Appends a member.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.0.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

/// Writes `s` as a quoted, escaped JSON string into `out`.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::obj()
            .field("z", 1u64)
            .field("a", Json::Arr(vec![Json::Null, Json::Bool(false)]))
            .build();
        assert_eq!(j.render(), "{\"z\":1,\"a\":[null,false]}");
    }
}
