//! Windowed time-series metrics: throughput, tail latency, occupancy,
//! and event counts resolved over fixed simulated-time windows.
//!
//! [`TimeSeries`] is the second half of the time-resolved observability
//! layer (enabled with `SimConfig::with_timeseries(window)`). Where
//! `RunStats` reports whole-run aggregates, the time-series slices the
//! run into fixed windows of simulated time and records, per window:
//!
//! * per-node committed and aborted transaction counts (whole run, not
//!   just the measurement interval — a failover dip outside the window
//!   would otherwise be invisible),
//! * the window's p99 commit latency (from a per-window histogram),
//! * the in-flight transaction count at window close,
//! * Locking-Buffer and NIC read-Bloom-filter occupancy sampled at the
//!   roll instant (integer sums, so aggregation order cannot perturb
//!   the bytes),
//! * admission-throttle, degraded-commit, and failover event counts.
//!
//! Windows materialize lazily: the current window closes when the first
//! event past its edge arrives (the cluster calls [`TimeSeries::roll`]
//! with an occupancy snapshot), and the final partial window is closed
//! by [`TimeSeries::finish`] at run end. Disabled (the default), none of
//! this exists: no RNG draws, no trace events, no stats bytes.

use crate::json::Json;
use hades_sim::stats::Histogram;
use hades_sim::time::Cycles;

/// Schema tag stamped into the `timeseries` JSON block.
pub const TS_SCHEMA: &str = "hades-timeseries/v1";

/// Closed windows are capped (a backstop far above any real run);
/// overflow is counted in [`TimeSeries::dropped`].
pub const TS_WINDOW_CAP: usize = 65_536;

/// A point-in-time hardware occupancy snapshot, as integer sums so the
/// aggregation is byte-deterministic regardless of container iteration
/// order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Locking-Buffer slots currently held, summed over all banks.
    pub lb_occupied: u64,
    /// Locking-Buffer slots total, summed over all banks.
    pub lb_slots: u64,
    /// Set bits over all live NIC read Bloom filters.
    pub bf_ones: u64,
    /// Total bits over all live NIC read Bloom filters.
    pub bf_bits: u64,
}

/// One closed window.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Window index (window `i` covers `[i*window, (i+1)*window)`).
    pub idx: u64,
    /// Committed transactions per node.
    pub committed: Vec<u64>,
    /// Aborted (squashed) attempts per node.
    pub aborted: Vec<u64>,
    /// Commit-latency samples recorded in the window.
    pub samples: u64,
    /// p99 commit latency over the window's samples (zero when empty).
    pub p99: Cycles,
    /// Transactions in flight (started, not yet committed) at close.
    pub inflight: u64,
    /// Admission-throttle events in the window.
    pub admission: u64,
    /// Degraded (saturation-fallback) commits in the window.
    pub degraded: u64,
    /// Failover events (epoch changes + promotions) in the window.
    pub failover: u64,
    /// Verb batches flushed in the window (DESIGN.md §14).
    pub batch_flushes: u64,
    /// Verbs those batches carried (occupancy = `batch_verbs / batch_flushes`).
    pub batch_verbs: u64,
    /// Migration state-transfer chunks moved in the window (DESIGN.md §15).
    pub migration_moves: u64,
    /// Messages blocked by a cut or flapped-down link in the window
    /// (DESIGN.md §16) — the windowed partition-state signal.
    pub link_cuts: u64,
    /// Commit handshakes refused by an expired-lease primary in the
    /// window (DESIGN.md §16).
    pub self_fences: u64,
    /// Hardware occupancy sampled at the roll instant.
    pub occupancy: Occupancy,
}

impl WindowStats {
    /// Committed transactions summed over all nodes.
    pub fn committed_total(&self) -> u64 {
        self.committed.iter().sum()
    }

    /// Aborted attempts summed over all nodes.
    pub fn aborted_total(&self) -> u64 {
        self.aborted.iter().sum()
    }
}

/// Goodput-dip metrics around a disruption (used by the `failover` bin):
/// how far windowed goodput fell below the pre-disruption baseline and
/// for how long.
#[derive(Debug, Clone, Copy)]
pub struct GoodputDip {
    /// Mean committed/window before the disruption window.
    pub baseline: f64,
    /// Minimum committed/window within the dip (or post-disruption
    /// minimum when no window fell below threshold).
    pub min_committed: u64,
    /// Relative depth: `1 - min/baseline`, clamped at 0.
    pub depth: f64,
    /// Consecutive windows below 90% of baseline starting at the first
    /// such post-disruption window.
    pub windows_below: u64,
    /// Window length in microseconds, for turning counts into time.
    pub window_us: f64,
}

impl GoodputDip {
    /// Dip duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.windows_below as f64 * self.window_us
    }

    /// Exports the dip metrics.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("baseline_per_window", self.baseline)
            .field("min_committed", self.min_committed)
            .field("depth", self.depth)
            .field("windows_below", self.windows_below)
            .field("duration_us", self.duration_us())
            .build()
    }
}

/// The time-series recorder: an accumulating current window plus the
/// closed-window list.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window: Cycles,
    nodes: usize,
    cur_idx: u64,
    cur_committed: Vec<u64>,
    cur_aborted: Vec<u64>,
    cur_admission: u64,
    cur_degraded: u64,
    cur_failover: u64,
    cur_batch_flushes: u64,
    cur_batch_verbs: u64,
    /// Whether any batch flush was ever recorded; gates the batching
    /// fields in [`Self::to_json`] so batching-off runs render
    /// byte-identically to builds without the subsystem.
    batch_seen: bool,
    cur_migration_moves: u64,
    cur_link_cuts: u64,
    cur_self_fences: u64,
    /// Whether any migration chunk was ever recorded; gates the
    /// `migration_moves` field in [`Self::to_json`] the same way.
    migration_seen: bool,
    /// Set on the first link-cut or self-fence so fault-free runs never
    /// render the nemesis window fields; gates `link_cuts` and
    /// `self_fences` in [`Self::to_json`].
    nemesis_seen: bool,
    cur_hist: Histogram,
    inflight: u64,
    windows: Vec<WindowStats>,
    dropped: u64,
    finished: bool,
}

impl TimeSeries {
    /// Creates a recorder with the given window length (clamped to at
    /// least one cycle) for a cluster of `nodes` nodes.
    pub fn new(window: Cycles, nodes: usize) -> Self {
        TimeSeries {
            window: window.max(Cycles::new(1)),
            nodes,
            cur_idx: 0,
            cur_committed: vec![0; nodes],
            cur_aborted: vec![0; nodes],
            cur_admission: 0,
            cur_degraded: 0,
            cur_failover: 0,
            cur_batch_flushes: 0,
            cur_batch_verbs: 0,
            batch_seen: false,
            cur_migration_moves: 0,
            migration_seen: false,
            cur_link_cuts: 0,
            cur_self_fences: 0,
            nemesis_seen: false,
            cur_hist: Histogram::new(),
            inflight: 0,
            windows: Vec::new(),
            dropped: 0,
            finished: false,
        }
    }

    /// Window length.
    pub fn window(&self) -> Cycles {
        self.window
    }

    /// True when `now` lies past the current window's edge, i.e. the
    /// caller must [`Self::roll`] (possibly repeatedly) before recording.
    pub fn needs_roll(&self, now: Cycles) -> bool {
        !self.finished && now.get() / self.window.get() > self.cur_idx
    }

    fn close_window(&mut self, occ: Occupancy) {
        let w = WindowStats {
            idx: self.cur_idx,
            committed: std::mem::replace(&mut self.cur_committed, vec![0; self.nodes]),
            aborted: std::mem::replace(&mut self.cur_aborted, vec![0; self.nodes]),
            samples: self.cur_hist.count(),
            p99: self.cur_hist.percentile(99.0),
            inflight: self.inflight,
            admission: std::mem::take(&mut self.cur_admission),
            degraded: std::mem::take(&mut self.cur_degraded),
            failover: std::mem::take(&mut self.cur_failover),
            batch_flushes: std::mem::take(&mut self.cur_batch_flushes),
            batch_verbs: std::mem::take(&mut self.cur_batch_verbs),
            migration_moves: std::mem::take(&mut self.cur_migration_moves),
            link_cuts: std::mem::take(&mut self.cur_link_cuts),
            self_fences: std::mem::take(&mut self.cur_self_fences),
            occupancy: occ,
        };
        self.cur_hist = Histogram::new();
        if self.windows.len() < TS_WINDOW_CAP {
            self.windows.push(w);
        } else {
            self.dropped += 1;
        }
    }

    /// Closes the current window with the given occupancy snapshot and
    /// opens the next one.
    pub fn roll(&mut self, occ: Occupancy) {
        if self.finished {
            return;
        }
        self.close_window(occ);
        self.cur_idx += 1;
    }

    /// Closes the final (partial) window at run end. Idempotent; further
    /// recording is ignored.
    pub fn finish(&mut self, occ: Occupancy) {
        if self.finished {
            return;
        }
        self.close_window(occ);
        self.finished = true;
    }

    /// A fresh transaction (not a retry) started.
    pub fn on_fresh_start(&mut self) {
        if !self.finished {
            self.inflight += 1;
        }
    }

    /// A transaction committed on `node` with end-to-end `latency`.
    pub fn on_commit(&mut self, node: u16, latency: Cycles) {
        if self.finished {
            return;
        }
        if let Some(c) = self.cur_committed.get_mut(node as usize) {
            *c += 1;
        }
        self.cur_hist.record(latency);
        self.inflight = self.inflight.saturating_sub(1);
    }

    /// An attempt on `node` was squashed (the transaction stays in
    /// flight and will retry).
    pub fn on_abort(&mut self, node: u16) {
        if self.finished {
            return;
        }
        if let Some(a) = self.cur_aborted.get_mut(node as usize) {
            *a += 1;
        }
    }

    /// The admission controller deferred a start.
    pub fn on_admission(&mut self) {
        if !self.finished {
            self.cur_admission += 1;
        }
    }

    /// A commit fell back to software validation under saturation.
    pub fn on_degrade(&mut self) {
        if !self.finished {
            self.cur_degraded += 1;
        }
    }

    /// A failover action (epoch change or promotion) happened.
    pub fn on_failover(&mut self) {
        if !self.finished {
            self.cur_failover += 1;
        }
    }

    /// A verb batch carrying `size` verbs flushed (DESIGN.md §14).
    pub fn on_batch_flush(&mut self, size: u32) {
        if !self.finished {
            self.cur_batch_flushes += 1;
            self.cur_batch_verbs += size as u64;
            self.batch_seen = true;
        }
    }

    /// A migration state-transfer chunk landed (DESIGN.md §15).
    pub fn on_migration_move(&mut self) {
        if !self.finished {
            self.cur_migration_moves += 1;
            self.migration_seen = true;
        }
    }

    /// A message was blocked by a cut or flapped-down link (DESIGN.md
    /// §16).
    pub fn on_link_cut(&mut self) {
        if !self.finished {
            self.cur_link_cuts += 1;
            self.nemesis_seen = true;
        }
    }

    /// An expired-lease primary refused a commit handshake (DESIGN.md
    /// §16).
    pub fn on_self_fence(&mut self) {
        if !self.finished {
            self.cur_self_fences += 1;
            self.nemesis_seen = true;
        }
    }

    /// Closed windows, in time order.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Windows dropped past the retention cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Goodput-dip metrics around a disruption at `at` (e.g. a node
    /// crash): baseline is the mean committed/window before the
    /// disruption's window; the dip is the consecutive run of
    /// post-disruption windows below 90% of that baseline. `None` when
    /// there is no usable pre-disruption baseline.
    pub fn goodput_dip(&self, at: Cycles) -> Option<GoodputDip> {
        let crash_idx = at.get() / self.window.get();
        let pre: Vec<u64> = self
            .windows
            .iter()
            .filter(|w| w.idx < crash_idx)
            .map(|w| w.committed_total())
            .collect();
        if pre.is_empty() {
            return None;
        }
        let baseline = pre.iter().sum::<u64>() as f64 / pre.len() as f64;
        if baseline <= 0.0 {
            return None;
        }
        let post: Vec<u64> = self
            .windows
            .iter()
            .filter(|w| w.idx >= crash_idx)
            .map(|w| w.committed_total())
            .collect();
        if post.is_empty() {
            return None;
        }
        let threshold = 0.9 * baseline;
        let first_below = post.iter().position(|&c| (c as f64) < threshold);
        let (min_committed, windows_below) = match first_below {
            Some(i) => {
                let run: Vec<u64> = post[i..]
                    .iter()
                    .take_while(|&&c| (c as f64) < threshold)
                    .copied()
                    .collect();
                (run.iter().copied().min().unwrap_or(0), run.len() as u64)
            }
            None => (post.iter().copied().min().unwrap_or(0), 0),
        };
        let depth = (1.0 - min_committed as f64 / baseline).max(0.0);
        Some(GoodputDip {
            baseline,
            min_committed,
            depth,
            windows_below,
            window_us: self.window.as_micros(),
        })
    }

    /// Exports the `timeseries` block:
    /// `{"schema", "window_cycles", "window_us", "nodes", "dropped",
    /// "windows": [{...}]}`.
    pub fn to_json(&self) -> Json {
        let windows = Json::Arr(
            self.windows
                .iter()
                .map(|w| {
                    let occ = w.occupancy;
                    let ratio = |num: u64, den: u64| {
                        if den == 0 {
                            0.0
                        } else {
                            num as f64 / den as f64
                        }
                    };
                    let mut b = Json::obj()
                        .field("idx", w.idx)
                        .field(
                            "committed",
                            Json::Arr(w.committed.iter().map(|&c| Json::UInt(c)).collect()),
                        )
                        .field(
                            "aborted",
                            Json::Arr(w.aborted.iter().map(|&a| Json::UInt(a)).collect()),
                        )
                        .field("samples", w.samples)
                        .field("p99_us", w.p99.as_micros())
                        .field("inflight", w.inflight)
                        .field("lb_occupancy", ratio(occ.lb_occupied, occ.lb_slots))
                        .field("bf_occupancy", ratio(occ.bf_ones, occ.bf_bits))
                        .field("admission", w.admission)
                        .field("degraded", w.degraded)
                        .field("failover", w.failover);
                    if self.batch_seen {
                        b = b
                            .field("batch_flushes", w.batch_flushes)
                            .field("batch_occupancy", ratio(w.batch_verbs, w.batch_flushes));
                    }
                    if self.migration_seen {
                        b = b.field("migration_moves", w.migration_moves);
                    }
                    if self.nemesis_seen {
                        b = b
                            .field("link_cuts", w.link_cuts)
                            .field("self_fences", w.self_fences);
                    }
                    b.build()
                })
                .collect(),
        );
        Json::obj()
            .field("schema", Json::str(TS_SCHEMA))
            .field("window_cycles", self.window.get())
            .field("window_us", self.window.as_micros())
            .field("nodes", self.nodes as u64)
            .field("dropped", self.dropped)
            .field("windows", windows)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    #[test]
    fn events_land_in_their_windows() {
        let mut ts = TimeSeries::new(cy(100), 2);
        ts.on_fresh_start();
        ts.on_fresh_start();
        ts.on_commit(0, cy(40));
        ts.on_abort(1);
        assert!(ts.needs_roll(cy(150)));
        ts.roll(Occupancy::default());
        assert!(!ts.needs_roll(cy(150)));
        ts.on_commit(1, cy(90));
        ts.finish(Occupancy {
            lb_occupied: 3,
            lb_slots: 8,
            bf_ones: 10,
            bf_bits: 64,
        });
        let w = ts.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].committed, vec![1, 0]);
        assert_eq!(w[0].aborted, vec![0, 1]);
        assert_eq!(w[0].inflight, 1);
        assert_eq!(w[1].committed, vec![0, 1]);
        assert_eq!(w[1].samples, 1);
        assert_eq!(w[1].p99, cy(90));
        assert_eq!(w[1].occupancy.lb_occupied, 3);
        // Finished: further recording is ignored.
        ts.on_commit(0, cy(10));
        assert_eq!(ts.windows().len(), 2);
    }

    #[test]
    fn empty_windows_have_zero_p99() {
        let mut ts = TimeSeries::new(cy(10), 1);
        ts.roll(Occupancy::default());
        ts.roll(Occupancy::default());
        ts.finish(Occupancy::default());
        for w in ts.windows() {
            assert_eq!(w.samples, 0);
            assert_eq!(w.p99, Cycles::ZERO);
        }
    }

    #[test]
    fn goodput_dip_is_measured() {
        let mut ts = TimeSeries::new(cy(100), 1);
        // Four healthy windows of 10, then a dip (2, 4), then recovery.
        for &c in &[10u64, 10, 10, 10, 2, 4, 10] {
            for _ in 0..c {
                ts.on_fresh_start();
                ts.on_commit(0, cy(5));
            }
            ts.roll(Occupancy::default());
        }
        ts.finish(Occupancy::default());
        let dip = ts.goodput_dip(cy(405)).expect("baseline exists");
        assert!((dip.baseline - 10.0).abs() < 1e-9);
        assert_eq!(dip.min_committed, 2);
        assert_eq!(dip.windows_below, 2);
        assert!((dip.depth - 0.8).abs() < 1e-9);
        // No pre-disruption windows: no baseline.
        assert!(ts.goodput_dip(cy(0)).is_none());
    }

    #[test]
    fn batch_series_is_windowed_and_gated() {
        // Without a single flush the batching fields are absent, so a
        // batching-off run renders identically to the pre-batching build.
        let mut ts = TimeSeries::new(cy(100), 1);
        ts.on_commit(0, cy(5));
        ts.finish(Occupancy::default());
        let doc = ts.to_json();
        let w = &doc.get("windows").unwrap().as_arr().unwrap()[0];
        assert!(w.get("batch_flushes").is_none(), "gated when batching off");

        let mut ts = TimeSeries::new(cy(100), 1);
        ts.on_batch_flush(4);
        ts.on_batch_flush(2);
        ts.roll(Occupancy::default());
        ts.finish(Occupancy::default());
        assert_eq!(ts.windows()[0].batch_flushes, 2);
        assert_eq!(ts.windows()[0].batch_verbs, 6);
        assert_eq!(ts.windows()[1].batch_flushes, 0);
        let doc = ts.to_json();
        let ws = doc.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(ws[0].get("batch_flushes").unwrap().as_u64(), Some(2));
        assert_eq!(ws[0].get("batch_occupancy").unwrap().as_f64(), Some(3.0));
        // Once batching was seen, every window carries the fields.
        assert_eq!(ws[1].get("batch_flushes").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn migration_series_is_windowed_and_gated() {
        // No chunk ever recorded: the field is absent, so migration-off
        // runs render identically to the pre-migration build.
        let mut ts = TimeSeries::new(cy(100), 1);
        ts.on_commit(0, cy(5));
        ts.finish(Occupancy::default());
        let doc = ts.to_json();
        let w = &doc.get("windows").unwrap().as_arr().unwrap()[0];
        assert!(
            w.get("migration_moves").is_none(),
            "gated when migration off"
        );

        let mut ts = TimeSeries::new(cy(100), 1);
        ts.on_migration_move();
        ts.on_migration_move();
        ts.roll(Occupancy::default());
        ts.finish(Occupancy::default());
        assert_eq!(ts.windows()[0].migration_moves, 2);
        assert_eq!(ts.windows()[1].migration_moves, 0);
        let doc = ts.to_json();
        let ws = doc.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(ws[0].get("migration_moves").unwrap().as_u64(), Some(2));
        // Once migration was seen, every window carries the field.
        assert_eq!(ws[1].get("migration_moves").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut ts = TimeSeries::new(cy(2_000), 2);
        ts.on_fresh_start();
        ts.on_commit(0, cy(123));
        ts.on_admission();
        ts.on_failover();
        ts.finish(Occupancy {
            lb_occupied: 4,
            lb_slots: 16,
            bf_ones: 32,
            bf_bits: 128,
        });
        let doc = ts.to_json();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(TS_SCHEMA));
        assert_eq!(doc.get("nodes").unwrap().as_u64(), Some(2));
        let w = &doc.get("windows").unwrap().as_arr().unwrap()[0];
        assert_eq!(w.get("samples").unwrap().as_u64(), Some(1));
        assert_eq!(w.get("admission").unwrap().as_u64(), Some(1));
        assert_eq!(w.get("failover").unwrap().as_u64(), Some(1));
        assert_eq!(w.get("lb_occupancy").unwrap().as_f64(), Some(0.25));
        assert_eq!(w.get("bf_occupancy").unwrap().as_f64(), Some(0.25));
    }
}
