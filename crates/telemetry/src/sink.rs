//! Trace sinks and the cloneable [`Tracer`] handle the simulators carry.
//!
//! The hot path is `Tracer::emit`: when no sink is installed (the
//! default) it is a single branch on a `None` discriminant — disabled
//! tracing costs nothing measurable, and no event value escapes the
//! caller. When a sink is installed, every component holding a clone of
//! the same `Tracer` appends to the same shared event stream, preserving
//! the simulator's deterministic event order.

use crate::event::{EventKind, TraceEvent};
use hades_sim::time::Cycles;
use std::cell::RefCell;
use std::fmt::Debug;
use std::rc::Rc;

/// Receives trace events as the simulation runs.
///
/// Implementations must not reorder events: exporters rely on the stream
/// being in emission (i.e. simulated-time-with-deterministic-tie-break)
/// order.
pub trait TraceSink: Debug {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);
}

/// A sink that drops everything (useful as an explicit placeholder).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// A sink buffering the full event stream in memory for later export.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Takes the recorded events out, leaving the sink empty.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// Cloneable handle to an optional shared [`TraceSink`].
///
/// # Examples
///
/// ```
/// use hades_sim::time::Cycles;
/// use hades_telemetry::event::{EventKind, NO_SLOT};
/// use hades_telemetry::sink::Tracer;
///
/// let (tracer, sink) = Tracer::memory();
/// tracer.emit(Cycles::new(10), 0, NO_SLOT, EventKind::TxnCommit);
/// assert_eq!(sink.borrow().events().len(), 1);
///
/// let off = Tracer::disabled();
/// off.emit(Cycles::new(10), 0, NO_SLOT, EventKind::TxnCommit); // no-op
/// assert!(!off.is_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl Tracer {
    /// A tracer that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer writing into the given shared sink.
    pub fn shared(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Convenience: a tracer backed by a fresh [`MemorySink`], returning
    /// both the handle to install and the sink to read back.
    pub fn memory() -> (Self, Rc<RefCell<MemorySink>>) {
        let sink = Rc::new(RefCell::new(MemorySink::new()));
        (
            Tracer {
                sink: Some(sink.clone()),
            },
            sink,
        )
    }

    /// Whether a sink is installed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one event; a no-op (one branch) when disabled.
    #[inline]
    pub fn emit(&self, at: Cycles, node: u16, slot: u32, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(&TraceEvent {
                at,
                node,
                slot,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_SLOT;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(Cycles::ZERO, 0, NO_SLOT, EventKind::TxnCommit);
    }

    #[test]
    fn clones_share_one_stream() {
        let (t, sink) = Tracer::memory();
        let t2 = t.clone();
        t.emit(Cycles::new(1), 0, 0, EventKind::TxnBegin { attempt: 1 });
        t2.emit(Cycles::new(2), 1, NO_SLOT, EventKind::TxnCommit);
        let events = sink.borrow().events().to_vec();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, Cycles::new(1));
        assert_eq!(events[1].node, 1);
    }

    #[test]
    fn take_events_drains() {
        let (t, sink) = Tracer::memory();
        t.emit(Cycles::ZERO, 0, 0, EventKind::TxnCommit);
        assert_eq!(sink.borrow_mut().take_events().len(), 1);
        assert!(sink.borrow().events().is_empty());
    }
}
