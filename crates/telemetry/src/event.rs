//! The trace-event taxonomy: everything the three protocol engines and
//! the hardware models (NIC Bloom filters, Locking Buffers, fabric) can
//! report about a run.
//!
//! Events are small `Copy` values stamped with simulated time; the
//! exporters in [`crate::chrome`] and [`crate::jsonl`] turn a recorded
//! stream into Perfetto-loadable Chrome traces or line-delimited JSON.

use hades_sim::time::Cycles;

/// Sentinel slot index for node-scoped events (NIC, fabric, directory)
/// that are not attributable to a single execution slot.
pub const NO_SLOT: u32 = u32::MAX;

/// A transaction-lifecycle phase, matching the paper's Fig 10 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Execution: running app logic and fetching data.
    Exec,
    /// Lock acquisition (Baseline write locks / Locking Buffer grab).
    Lock,
    /// Read-set validation (Baseline version checks / HADES Validation).
    Validate,
    /// Commit: write-back, unlock, replication.
    Commit,
}

impl Phase {
    /// Every phase, in lifecycle order.
    pub const ALL: [Phase; 4] = [Phase::Exec, Phase::Lock, Phase::Validate, Phase::Commit];

    /// Stable lowercase name used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Exec => "exec",
            Phase::Lock => "lock",
            Phase::Validate => "validate",
            Phase::Commit => "commit",
        }
    }
}

/// The protocol-level meaning of a fabric message ("verb", in RDMA
/// terms). One taxonomy covers all three protocols; each engine uses the
/// subset matching its message set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    /// Remote read request (Baseline RDMA read / HADES remote access).
    Read,
    /// Remote read response carrying data lines.
    ReadResp,
    /// Baseline lock request for a remote write-set entry.
    Lock,
    /// Baseline lock response (grant or deny).
    LockResp,
    /// Baseline read-set validation request.
    Validate,
    /// Baseline read-set validation response.
    ValidateResp,
    /// Commit-time write-back of updated lines.
    Write,
    /// Baseline unlock message releasing a write lock.
    Unlock,
    /// HADES Intend-to-commit carrying read/write line lists.
    Intend,
    /// HADES Ack from a participant directory.
    Ack,
    /// HADES Validation message closing the commit.
    Validation,
    /// HADES Squash notification aborting a speculative transaction.
    Squash,
    /// HADES Clear message dropping remote NIC filters.
    Clear,
    /// Replication prepare (log shipping to backups).
    ReplicaPrepare,
    /// Replication acknowledgment from a backup.
    ReplicaAck,
    /// Anything not covered above (kept last for forward compatibility).
    Other,
}

impl Verb {
    /// Every verb, in declaration order (indexes match [`Verb::index`]).
    pub const ALL: [Verb; 16] = [
        Verb::Read,
        Verb::ReadResp,
        Verb::Lock,
        Verb::LockResp,
        Verb::Validate,
        Verb::ValidateResp,
        Verb::Write,
        Verb::Unlock,
        Verb::Intend,
        Verb::Ack,
        Verb::Validation,
        Verb::Squash,
        Verb::Clear,
        Verb::ReplicaPrepare,
        Verb::ReplicaAck,
        Verb::Other,
    ];

    /// Number of verb kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for counter arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            Verb::Read => "read",
            Verb::ReadResp => "read_resp",
            Verb::Lock => "lock",
            Verb::LockResp => "lock_resp",
            Verb::Validate => "validate",
            Verb::ValidateResp => "validate_resp",
            Verb::Write => "write",
            Verb::Unlock => "unlock",
            Verb::Intend => "intend",
            Verb::Ack => "ack",
            Verb::Validation => "validation",
            Verb::Squash => "squash",
            Verb::Clear => "clear",
            Verb::ReplicaPrepare => "replica_prepare",
            Verb::ReplicaAck => "replica_ack",
            Verb::Other => "other",
        }
    }
}

/// Per-verb message counters, indexed by [`Verb::index`].
///
/// # Examples
///
/// ```
/// use hades_telemetry::event::{Verb, VerbCounts};
///
/// let mut v = VerbCounts::new();
/// v.bump(Verb::Intend);
/// v.bump(Verb::Intend);
/// assert_eq!(v.get(Verb::Intend), 2);
/// assert_eq!(v.total(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerbCounts([u64; Verb::COUNT]);

impl VerbCounts {
    /// All-zero counters.
    pub const fn new() -> Self {
        VerbCounts([0; Verb::COUNT])
    }

    /// Increments the counter for `verb`.
    pub fn bump(&mut self, verb: Verb) {
        self.0[verb.index()] += 1;
    }

    /// Count for one verb.
    pub const fn get(&self, verb: Verb) -> u64 {
        self.0[verb.index()]
    }

    /// Sum over all verbs.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates `(verb, count)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Verb, u64)> + '_ {
        Verb::ALL.iter().map(move |&v| (v, self.get(v)))
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &VerbCounts) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }
}

/// Which Bloom filter a hardware operation touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterSite {
    /// NIC-side read filter for a remote transaction.
    NicRead,
    /// NIC-side write filter for a remote transaction.
    NicWrite,
    /// Core-side read filter (local access tracking).
    CoreRead,
    /// Core-side write filter (WrTX_ID tags / dual write filter).
    CoreWrite,
}

impl FilterSite {
    /// Stable lowercase name used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            FilterSite::NicRead => "nic_read",
            FilterSite::NicWrite => "nic_write",
            FilterSite::CoreRead => "core_read",
            FilterSite::CoreWrite => "core_write",
        }
    }
}

/// A fault injected by the `hades-fault` plane into the simulated
/// cluster (messages, nodes, NICs, or replica storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A message was dropped (or, on the reliable transport, charged a
    /// hardware retransmission).
    Drop {
        /// The dropped message's verb.
        verb: Verb,
    },
    /// A message was delivered twice.
    Duplicate {
        /// The duplicated message's verb.
        verb: Verb,
    },
    /// A message was delayed by a configured amount.
    Delay {
        /// The delayed message's verb.
        verb: Verb,
    },
    /// A message was jittered so later sends may overtake it.
    Reorder {
        /// The jittered message's verb.
        verb: Verb,
    },
    /// A node crashed, losing all in-flight transaction state.
    NodeCrash,
    /// A crashed node restarted.
    NodeRestart,
    /// An arrival was held by a NIC stall window.
    NicStall,
    /// A replica persist failed.
    PersistFail,
    /// A message hit a cut or flapped-down link (lost on the lossy class,
    /// held until the heal on the reliable class).
    LinkCut {
        /// The blocked message's verb.
        verb: Verb,
    },
    /// A message crossed a gray (slow-but-alive) node or link and was
    /// charged a latency multiple.
    LinkSlow {
        /// The slowed message's verb.
        verb: Verb,
    },
}

impl InjectedFault {
    /// Stable lowercase name used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            InjectedFault::Drop { .. } => "drop",
            InjectedFault::Duplicate { .. } => "duplicate",
            InjectedFault::Delay { .. } => "delay",
            InjectedFault::Reorder { .. } => "reorder",
            InjectedFault::NodeCrash => "node_crash",
            InjectedFault::NodeRestart => "node_restart",
            InjectedFault::NicStall => "nic_stall",
            InjectedFault::PersistFail => "persist_fail",
            InjectedFault::LinkCut { .. } => "link_cut",
            InjectedFault::LinkSlow { .. } => "link_slow",
        }
    }

    /// The verb the fault targeted, for message-level faults.
    pub const fn verb(self) -> Option<Verb> {
        match self {
            InjectedFault::Drop { verb }
            | InjectedFault::Duplicate { verb }
            | InjectedFault::Delay { verb }
            | InjectedFault::Reorder { verb }
            | InjectedFault::LinkCut { verb }
            | InjectedFault::LinkSlow { verb } => Some(verb),
            _ => None,
        }
    }
}

/// A recovery action a protocol engine took in response to a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A commit timeout fired (or the transport retransmitted) and the
    /// transaction retried/aborted cleanly.
    TimeoutRetry,
    /// A participant's lease on a suspected-crashed coordinator expired,
    /// releasing its Locking Buffer and NIC filters.
    LeaseExpire,
    /// Durable replica state was replayed on node restart.
    ReplicaReplay,
}

impl RecoveryKind {
    /// Stable lowercase name used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            RecoveryKind::TimeoutRetry => "timeout_retry",
            RecoveryKind::LeaseExpire => "lease_expire",
            RecoveryKind::ReplicaReplay => "replica_replay",
        }
    }
}

/// What happened. Variants carry only small `Copy` payloads so recording
/// stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A slot started (or restarted) a transaction attempt.
    TxnBegin {
        /// 1-based attempt number (1 = first try, >1 = retry).
        attempt: u32,
    },
    /// A lifecycle phase opened for the slot's current transaction.
    PhaseBegin(Phase),
    /// The matching phase closed.
    PhaseEnd(Phase),
    /// The transaction committed.
    TxnCommit,
    /// The transaction aborted/squashed; `reason` is a stable label
    /// (e.g. `"wrtx-conflict"`).
    TxnAbort {
        /// Stable abort-reason label.
        reason: &'static str,
    },
    /// A fabric message left the source NIC.
    VerbSend {
        /// Protocol meaning of the message.
        verb: Verb,
        /// Destination node.
        dst: u16,
        /// Wire bytes including header.
        bytes: u32,
    },
    /// A fabric message arrived at the destination NIC.
    VerbRecv {
        /// Protocol meaning of the message.
        verb: Verb,
        /// Source node.
        src: u16,
        /// Wire bytes including header.
        bytes: u32,
    },
    /// A line was inserted into a hardware Bloom filter.
    BloomInsert {
        /// Which filter.
        site: FilterSite,
    },
    /// A membership probe against hardware Bloom filters.
    BloomProbe {
        /// Whether any filter reported (possible) membership.
        hit: bool,
    },
    /// A probe hit that exact-line comparison disproved — a Bloom false
    /// positive that will squash an innocent transaction.
    BloomFalsePositive,
    /// A Locking Buffer was granted to a committing transaction.
    LockAcquire {
        /// Owner token of the grantee.
        owner: u64,
    },
    /// An access or lock attempt stalled against a held Locking Buffer.
    LockStall {
        /// Owner token of the transaction holding the conflicting buffer.
        holder: u64,
    },
    /// The fault plane injected a fault here.
    FaultInjected {
        /// What was injected.
        fault: InjectedFault,
    },
    /// A protocol engine recovered from a fault.
    Recovery {
        /// What recovery action ran.
        action: RecoveryKind,
    },
    /// The admission controller deferred a new transaction start because
    /// the node was over its in-flight, abort-rate, or Locking Buffer
    /// occupancy threshold.
    AdmissionThrottled,
    /// A commit that could not get hardware assistance (Locking Buffer
    /// full or filters saturated) fell back to software validation
    /// instead of squashing.
    DegradedCommit,
    /// An aged transaction was granted backoff priority by the contention
    /// manager so it cannot starve.
    StarvationBoost {
        /// 1-based attempt number at the time of the boost.
        attempt: u32,
    },
    /// The cluster advanced to a new configuration epoch after declaring
    /// a node dead.
    EpochChange {
        /// The new epoch number.
        epoch: u64,
    },
    /// A backup replica was promoted to primary for a partition whose
    /// home node left the configuration.
    Promotion {
        /// The partition (its original home node id).
        partition: u16,
        /// The promoted node now serving the partition.
        new_primary: u16,
    },
    /// A fabric verb stamped with a pre-reconfiguration epoch and
    /// involving a departed node was dropped at delivery.
    VerbFenced {
        /// The fenced verb.
        verb: Verb,
    },
    /// A verb batch closed and rang its doorbell (DESIGN.md §14).
    BatchFlushed {
        /// Destination node of the batch's queue pair.
        dst: u16,
        /// Verbs the batch carried (piggybacked squashes included).
        size: u32,
    },
    /// A squash notification piggybacked on an open batch already
    /// carrying a squash to the same destination.
    BatchCoalesced {
        /// Destination node of the batch's queue pair.
        dst: u16,
    },
    /// A planned shard migration announced itself: the epoch advanced
    /// and the copy phase is about to start streaming (DESIGN.md §15).
    MigrationStart {
        /// The partition being moved (its original home node id).
        partition: u16,
        /// The destination node that will serve it after the cutover.
        dst: u16,
    },
    /// One bounded copy chunk of a migrating partition landed at the
    /// destination.
    ChunkMigrated {
        /// The partition being moved.
        partition: u16,
        /// 0-based chunk index within the move.
        chunk: u32,
    },
    /// A migration cutover flipped the partition map: the destination
    /// now serves the moved partitions at the new epoch.
    MigrationCutover {
        /// The epoch after the flip.
        epoch: u64,
    },
    /// A link-fault window (cut or flap) became active on a directed
    /// link: traffic from `src` to `dst` is now partitioned away.
    LinkCut {
        /// Sending side of the cut direction.
        src: u16,
        /// Receiving side of the cut direction.
        dst: u16,
    },
    /// A link-fault window ended: traffic from `src` to `dst` flows
    /// again.
    LinkHealed {
        /// Sending side of the healed direction.
        src: u16,
        /// Receiving side of the healed direction.
        dst: u16,
    },
    /// A node whose own lease expired refused a commit handshake rather
    /// than risk dueling a promoted successor (FaRMv2-style self-fence).
    SelfFenced {
        /// The self-fencing node.
        node: u16,
    },
    /// The failure detector wanted to declare a node dead but could not
    /// observe a liveness quorum; the epoch is frozen instead.
    QuorumLost {
        /// The suspect whose death declaration is frozen.
        node: u16,
    },
}

impl EventKind {
    /// Coarse category used by the Chrome exporter and metric names:
    /// `"txn"`, `"phase"`, `"net"`, `"bloom"`, `"lock"`, `"fault"`,
    /// `"recovery"`, `"overload"`, `"membership"`, `"batch"`, or
    /// `"migration"`.
    pub const fn category(&self) -> &'static str {
        match self {
            EventKind::TxnBegin { .. } | EventKind::TxnCommit | EventKind::TxnAbort { .. } => "txn",
            EventKind::PhaseBegin(_) | EventKind::PhaseEnd(_) => "phase",
            EventKind::VerbSend { .. } | EventKind::VerbRecv { .. } => "net",
            EventKind::BloomInsert { .. }
            | EventKind::BloomProbe { .. }
            | EventKind::BloomFalsePositive => "bloom",
            EventKind::LockAcquire { .. } | EventKind::LockStall { .. } => "lock",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::Recovery { .. } => "recovery",
            EventKind::AdmissionThrottled
            | EventKind::DegradedCommit
            | EventKind::StarvationBoost { .. } => "overload",
            EventKind::EpochChange { .. }
            | EventKind::Promotion { .. }
            | EventKind::VerbFenced { .. } => "membership",
            EventKind::BatchFlushed { .. } | EventKind::BatchCoalesced { .. } => "batch",
            EventKind::MigrationStart { .. }
            | EventKind::ChunkMigrated { .. }
            | EventKind::MigrationCutover { .. } => "migration",
            EventKind::LinkCut { .. } | EventKind::LinkHealed { .. } => "fault",
            EventKind::SelfFenced { .. } | EventKind::QuorumLost { .. } => "membership",
        }
    }

    /// Short stable name for the event kind.
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::TxnBegin { .. } => "txn_begin",
            EventKind::PhaseBegin(_) => "phase_begin",
            EventKind::PhaseEnd(_) => "phase_end",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnAbort { .. } => "txn_abort",
            EventKind::VerbSend { .. } => "verb_send",
            EventKind::VerbRecv { .. } => "verb_recv",
            EventKind::BloomInsert { .. } => "bloom_insert",
            EventKind::BloomProbe { .. } => "bloom_probe",
            EventKind::BloomFalsePositive => "bloom_false_positive",
            EventKind::LockAcquire { .. } => "lock_acquire",
            EventKind::LockStall { .. } => "lock_stall",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::Recovery { .. } => "recovery",
            EventKind::AdmissionThrottled => "admission_throttled",
            EventKind::DegradedCommit => "degraded_commit",
            EventKind::StarvationBoost { .. } => "starvation_boost",
            EventKind::EpochChange { .. } => "epoch_change",
            EventKind::Promotion { .. } => "promotion",
            EventKind::VerbFenced { .. } => "verb_fenced",
            EventKind::BatchFlushed { .. } => "batch_flushed",
            EventKind::BatchCoalesced { .. } => "batch_coalesced",
            EventKind::MigrationStart { .. } => "migration_start",
            EventKind::ChunkMigrated { .. } => "chunk_migrated",
            EventKind::MigrationCutover { .. } => "migration_cutover",
            EventKind::LinkCut { .. } => "link_cut",
            EventKind::LinkHealed { .. } => "link_healed",
            EventKind::SelfFenced { .. } => "self_fenced",
            EventKind::QuorumLost { .. } => "quorum_lost",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: Cycles,
    /// Node where the event happened.
    pub node: u16,
    /// Global execution-slot index, or [`NO_SLOT`] for node-scoped events.
    pub slot: u32,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_indexes_are_dense_and_stable() {
        for (i, v) in Verb::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
        assert_eq!(Verb::COUNT, 16);
    }

    #[test]
    fn verb_counts_accumulate_and_merge() {
        let mut a = VerbCounts::new();
        let mut b = VerbCounts::new();
        a.bump(Verb::Read);
        b.bump(Verb::Read);
        b.bump(Verb::Ack);
        a.merge(&b);
        assert_eq!(a.get(Verb::Read), 2);
        assert_eq!(a.get(Verb::Ack), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn categories_cover_all_kinds() {
        let cases = [
            (EventKind::TxnBegin { attempt: 1 }, "txn"),
            (EventKind::PhaseBegin(Phase::Exec), "phase"),
            (
                EventKind::VerbSend {
                    verb: Verb::Intend,
                    dst: 1,
                    bytes: 64,
                },
                "net",
            ),
            (EventKind::BloomProbe { hit: false }, "bloom"),
            (EventKind::LockStall { holder: 7 }, "lock"),
            (
                EventKind::FaultInjected {
                    fault: InjectedFault::Drop { verb: Verb::Intend },
                },
                "fault",
            ),
            (
                EventKind::Recovery {
                    action: RecoveryKind::LeaseExpire,
                },
                "recovery",
            ),
            (EventKind::AdmissionThrottled, "overload"),
            (EventKind::DegradedCommit, "overload"),
            (EventKind::StarvationBoost { attempt: 9 }, "overload"),
            (EventKind::EpochChange { epoch: 1 }, "membership"),
            (
                EventKind::Promotion {
                    partition: 1,
                    new_primary: 2,
                },
                "membership",
            ),
            (EventKind::VerbFenced { verb: Verb::Ack }, "membership"),
            (EventKind::BatchFlushed { dst: 1, size: 4 }, "batch"),
            (EventKind::BatchCoalesced { dst: 1 }, "batch"),
            (
                EventKind::MigrationStart {
                    partition: 2,
                    dst: 0,
                },
                "migration",
            ),
            (
                EventKind::ChunkMigrated {
                    partition: 2,
                    chunk: 3,
                },
                "migration",
            ),
            (EventKind::MigrationCutover { epoch: 2 }, "migration"),
            (EventKind::LinkCut { src: 0, dst: 1 }, "fault"),
            (EventKind::LinkHealed { src: 0, dst: 1 }, "fault"),
            (EventKind::SelfFenced { node: 3 }, "membership"),
            (EventKind::QuorumLost { node: 3 }, "membership"),
        ];
        for (kind, cat) in cases {
            assert_eq!(kind.category(), cat);
        }
    }

    #[test]
    fn fault_labels_and_verbs_are_stable() {
        assert_eq!(InjectedFault::NodeCrash.label(), "node_crash");
        assert_eq!(InjectedFault::NodeCrash.verb(), None);
        let drop = InjectedFault::Drop { verb: Verb::Ack };
        assert_eq!(drop.label(), "drop");
        assert_eq!(drop.verb(), Some(Verb::Ack));
        assert_eq!(RecoveryKind::ReplicaReplay.label(), "replica_replay");
    }
}
