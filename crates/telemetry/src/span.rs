//! Causal transaction spans: per-transaction time-resolved attribution.
//!
//! [`SpanLog`] is the record-keeping half of the tail-attribution layer
//! (enabled with `SimConfig::with_spans()`). Where the phase profiler
//! ([`crate::profile::PhaseProfile`]) folds every committed transaction
//! into six aggregate buckets, the span log keeps the *individual*
//! transactions: an ordered segment list per phase transition, each
//! handshake verb round's send→last-response interval, and every abort
//! with its reason and (when known) the squashing peer.
//!
//! The slot state machine mirrors the profiler exactly — same
//! mark-monotonic transitions, same `record` gating at commit — so the
//! profiler's sum-exactness invariant carries over per transaction:
//! a [`TxnSpan`]'s segments telescope exactly (to the cycle) to its
//! `first_start → commit` latency (tested in `tests/span_invariants.rs`).
//!
//! The critical-path analyzer on top reconstructs the top-K slowest
//! committed and most-retried transactions, names the dominant
//! contributor, and exports a `tail` JSON block plus per-transaction
//! Chrome tracks (see [`crate::chrome::span_chrome_trace`]).
//!
//! Disabled (the default), none of this exists: no RNG draws, no trace
//! events, no stats bytes.

use crate::event::Verb;
use crate::json::Json;
use crate::profile::ProfPhase;
use hades_sim::time::Cycles;

/// Schema tag stamped into the `tail` JSON block.
pub const SPAN_SCHEMA: &str = "hades-tail/v1";

/// Retained committed transactions are capped (deterministically, in
/// commit order) so pathological runs cannot exhaust memory; overflow is
/// counted in [`SpanLog::dropped`].
pub const SPAN_RETAIN_CAP: usize = 65_536;

/// One contiguous interval a transaction spent in a single phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The phase the interval is charged to.
    pub phase: ProfPhase,
    /// Interval start (simulated time).
    pub start: Cycles,
    /// Interval end; always `>= start`.
    pub end: Cycles,
}

impl Segment {
    /// Cycles covered by this segment.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start).get()
    }
}

/// One handshake round: a request-verb fan-out and the wait until its
/// last response (Lock→LockResp, Validate→ValidateResp, Intend→Ack,
/// ReplicaPrepare→ReplicaAck). Rounds cut short by an abort or commit
/// end at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerbRound {
    /// The request verb that opened the round.
    pub verb: Verb,
    /// Peers the request fanned out to.
    pub peers: u32,
    /// 1-based attempt the round belongs to.
    pub attempt: u32,
    /// Send time of the first request.
    pub start: Cycles,
    /// Arrival of the last response (or the cutting abort/commit).
    pub end: Cycles,
}

/// One squashed attempt: why, when, and (for squashes initiated by a
/// remote conflict check) by whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortSpan {
    /// Stable abort-reason label (e.g. `"wrtx-conflict"`).
    pub reason: &'static str,
    /// Simulated time of the squash.
    pub at: Cycles,
    /// 1-based attempt number that died.
    pub attempt: u32,
    /// The node whose conflict check squashed us, when attributable.
    pub by: Option<u16>,
}

/// The full causal record of one committed transaction: every attempt's
/// phase segments, verb rounds, and aborts, from the first start to the
/// final commit.
#[derive(Debug, Clone)]
pub struct TxnSpan {
    /// Coordinator node.
    pub node: u16,
    /// Execution-slot index on that node's cluster-global numbering.
    pub slot: u32,
    /// First attempt's start.
    pub start: Cycles,
    /// Commit instant; segments tile `[start, end]` exactly.
    pub end: Cycles,
    /// Attempts taken (1 = committed first try).
    pub attempts: u32,
    /// Phase segments in time order, contiguous and non-overlapping.
    pub segments: Vec<Segment>,
    /// Completed verb rounds in open order.
    pub rounds: Vec<VerbRound>,
    /// Squashed attempts in time order.
    pub aborts: Vec<AbortSpan>,
}

impl TxnSpan {
    /// End-to-end latency: first start to commit, all attempts included.
    pub fn latency(&self) -> Cycles {
        self.end.saturating_sub(self.start)
    }

    /// Total cycles per phase over all segments.
    pub fn phase_cycles(&self) -> [u64; ProfPhase::COUNT] {
        let mut acc = [0u64; ProfPhase::COUNT];
        for seg in &self.segments {
            acc[seg.phase.index()] += seg.cycles();
        }
        acc
    }

    /// The phase this transaction spent the most time in (ties resolve
    /// to the earlier lifecycle phase).
    pub fn dominant(&self) -> ProfPhase {
        let acc = self.phase_cycles();
        let mut best = ProfPhase::Exec;
        for p in ProfPhase::ALL {
            if acc[p.index()] > acc[best.index()] {
                best = p;
            }
        }
        best
    }

    fn to_json(&self) -> Json {
        let acc = self.phase_cycles();
        let phases = Json::Obj(
            ProfPhase::ALL
                .iter()
                .map(|&p| (p.label().to_string(), Json::UInt(acc[p.index()])))
                .collect(),
        );
        let rounds = Json::Arr(
            self.rounds
                .iter()
                .map(|r| {
                    Json::obj()
                        .field("verb", Json::str(r.verb.label()))
                        .field("peers", u64::from(r.peers))
                        .field("attempt", u64::from(r.attempt))
                        .field("start", r.start.get())
                        .field("end", r.end.get())
                        .build()
                })
                .collect(),
        );
        let aborts = Json::Arr(
            self.aborts
                .iter()
                .map(|a| {
                    Json::obj()
                        .field("reason", Json::str(a.reason))
                        .field("at", a.at.get())
                        .field("attempt", u64::from(a.attempt))
                        .field("by", a.by.map_or(Json::Null, |n| Json::UInt(u64::from(n))))
                        .build()
                })
                .collect(),
        );
        Json::obj()
            .field("node", u64::from(self.node))
            .field("slot", u64::from(self.slot))
            .field("start", self.start.get())
            .field("latency", self.latency().get())
            .field("attempts", u64::from(self.attempts))
            .field("dominant", Json::str(self.dominant().label()))
            .field("phases", phases)
            .field("rounds", rounds)
            .field("aborts", aborts)
            .build()
    }
}

/// Per-slot recording state for the transaction currently attributed in
/// that slot (mirrors the profiler's `SlotProf`, but keeps the pieces).
#[derive(Debug, Clone)]
struct SlotSpan {
    active: bool,
    node: u16,
    slot: u32,
    start: Cycles,
    mark: Cycles,
    phase: ProfPhase,
    attempt: u32,
    segments: Vec<Segment>,
    rounds: Vec<VerbRound>,
    open_rounds: Vec<(Verb, u32, Cycles)>,
    aborts: Vec<AbortSpan>,
    pending_by: Option<u16>,
}

impl SlotSpan {
    fn idle() -> Self {
        SlotSpan {
            active: false,
            node: 0,
            slot: 0,
            start: Cycles::ZERO,
            mark: Cycles::ZERO,
            phase: ProfPhase::Exec,
            attempt: 1,
            segments: Vec::new(),
            rounds: Vec::new(),
            open_rounds: Vec::new(),
            aborts: Vec::new(),
            pending_by: None,
        }
    }

    /// Closes the open phase at `max(mark, now)`, appending (and
    /// coalescing) the segment. Mark-monotonic like the profiler.
    fn close_segment(&mut self, now: Cycles) {
        let end = self.mark.max(now);
        if end > self.mark {
            match self.segments.last_mut() {
                Some(last) if last.phase == self.phase && last.end == self.mark => {
                    last.end = end;
                }
                _ => self.segments.push(Segment {
                    phase: self.phase,
                    start: self.mark,
                    end,
                }),
            }
        }
        self.mark = end;
    }

    fn close_rounds(&mut self, now: Cycles) {
        for (verb, peers, begin) in self.open_rounds.drain(..) {
            self.rounds.push(VerbRound {
                verb,
                peers,
                attempt: self.attempt,
                start: begin,
                end: begin.max(now),
            });
        }
    }
}

/// The span log: slot state machines feeding a capped list of committed
/// [`TxnSpan`]s, plus the critical-path analyzer over them.
#[derive(Debug, Clone)]
pub struct SpanLog {
    slots: Vec<SlotSpan>,
    txns: Vec<TxnSpan>,
    dropped: u64,
}

impl SpanLog {
    /// Creates a span log for a cluster with `total_slots` slots.
    pub fn new(total_slots: usize) -> Self {
        SpanLog {
            slots: (0..total_slots).map(|_| SlotSpan::idle()).collect(),
            txns: Vec::new(),
            dropped: 0,
        }
    }

    /// A fresh transaction starts in slot `si` on `node` at `now`.
    pub fn slot_start(&mut self, si: usize, node: u16, slot: u32, now: Cycles) {
        let mut s = SlotSpan::idle();
        s.active = true;
        s.node = node;
        s.slot = slot;
        s.start = now;
        s.mark = now;
        self.slots[si] = s;
    }

    /// The slot's transaction moves to `phase` at `now`; same semantics
    /// as [`crate::profile::PhaseProfile::slot_enter`] (mark-monotonic,
    /// ignored while idle), but the closed interval is kept as a
    /// [`Segment`] instead of folded into an accumulator.
    pub fn slot_enter(&mut self, si: usize, phase: ProfPhase, now: Cycles) {
        let s = &mut self.slots[si];
        if !s.active {
            return;
        }
        s.close_segment(now);
        s.phase = phase;
    }

    /// A request-verb fan-out to `peers` participants left at `now`; the
    /// round stays open until [`Self::round_end`] or a cutting
    /// abort/commit.
    pub fn round_begin(&mut self, si: usize, verb: Verb, peers: u32, now: Cycles) {
        let s = &mut self.slots[si];
        if !s.active || peers == 0 {
            return;
        }
        s.open_rounds.push((verb, peers, now));
    }

    /// The last outstanding response of the slot's open round(s) arrived
    /// at `now`.
    pub fn round_end(&mut self, si: usize, now: Cycles) {
        let s = &mut self.slots[si];
        if !s.active {
            return;
        }
        s.close_rounds(now);
    }

    /// Names the peer whose conflict check is about to squash the slot's
    /// transaction; consumed by the next [`Self::slot_abort`].
    pub fn abort_source(&mut self, si: usize, by: u16) {
        let s = &mut self.slots[si];
        if s.active {
            s.pending_by = Some(by);
        }
    }

    /// The slot's attempt was squashed at `now` for `reason`: open rounds
    /// are cut, the phase moves to backoff, and the abort is recorded
    /// (with the pending squash source, if one was named).
    pub fn slot_abort(&mut self, si: usize, reason: &'static str, now: Cycles) {
        let s = &mut self.slots[si];
        if !s.active {
            return;
        }
        s.close_rounds(now);
        s.close_segment(now);
        s.phase = ProfPhase::Backoff;
        let by = s.pending_by.take();
        let attempt = s.attempt;
        s.aborts.push(AbortSpan {
            reason,
            at: now,
            attempt,
            by,
        });
        s.attempt += 1;
    }

    /// The slot's transaction committed at `now`. When `record` is true
    /// the finished [`TxnSpan`] is retained (up to [`SPAN_RETAIN_CAP`]);
    /// either way the slot returns to idle.
    pub fn slot_commit(&mut self, si: usize, now: Cycles, record: bool) {
        let s = &mut self.slots[si];
        if !s.active {
            return;
        }
        s.close_rounds(now);
        s.close_segment(now);
        if record {
            if self.txns.len() < SPAN_RETAIN_CAP {
                let txn = TxnSpan {
                    node: s.node,
                    slot: s.slot,
                    start: s.start,
                    end: s.mark,
                    attempts: s.attempt,
                    segments: std::mem::take(&mut s.segments),
                    rounds: std::mem::take(&mut s.rounds),
                    aborts: std::mem::take(&mut s.aborts),
                };
                self.txns.push(txn);
            } else {
                self.dropped += 1;
            }
        }
        self.slots[si] = SlotSpan::idle();
    }

    /// Committed transactions retained.
    pub fn recorded(&self) -> u64 {
        self.txns.len() as u64
    }

    /// Committed transactions dropped past the retention cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Every retained transaction, in commit order.
    pub fn txns(&self) -> &[TxnSpan] {
        &self.txns
    }

    fn ranked<F: Fn(&TxnSpan) -> (u64, u64)>(&self, k: usize, key: F) -> Vec<&TxnSpan> {
        let mut v: Vec<&TxnSpan> = self.txns.iter().collect();
        // Deterministic total order: primary key descending, then start,
        // node, slot ascending (unique per retained transaction).
        v.sort_by(|a, b| {
            key(b)
                .cmp(&key(a))
                .then(a.start.cmp(&b.start))
                .then(a.node.cmp(&b.node))
                .then(a.slot.cmp(&b.slot))
        });
        v.truncate(k);
        v
    }

    /// The `k` slowest committed transactions, slowest first.
    pub fn top_slowest(&self, k: usize) -> Vec<&TxnSpan> {
        self.ranked(k, |t| (t.latency().get(), u64::from(t.attempts)))
    }

    /// The `k` most-retried committed transactions, most attempts first.
    pub fn top_retried(&self, k: usize) -> Vec<&TxnSpan> {
        self.ranked(k, |t| (u64::from(t.attempts), t.latency().get()))
    }

    /// Phase totals over the `k` slowest transactions.
    pub fn tail_phase_cycles(&self, k: usize) -> [u64; ProfPhase::COUNT] {
        let mut acc = [0u64; ProfPhase::COUNT];
        for t in self.top_slowest(k) {
            let pc = t.phase_cycles();
            for (a, c) in acc.iter_mut().zip(pc.iter()) {
                *a += c;
            }
        }
        acc
    }

    /// The dominant critical-path contributor of the `k` slowest
    /// committed transactions, or `None` if nothing was recorded.
    pub fn dominant(&self, k: usize) -> Option<ProfPhase> {
        if self.txns.is_empty() {
            return None;
        }
        let acc = self.tail_phase_cycles(k);
        let mut best = ProfPhase::Exec;
        for p in ProfPhase::ALL {
            if acc[p.index()] > acc[best.index()] {
                best = p;
            }
        }
        Some(best)
    }

    /// Exports the `tail` block: schema tag, counts, the dominant
    /// contributor, phase totals over the top-`k` slowest, and the
    /// top-`k` slowest / most-retried transactions in full.
    pub fn tail_json(&self, k: usize) -> Json {
        let acc = self.tail_phase_cycles(k);
        let phases = Json::Obj(
            ProfPhase::ALL
                .iter()
                .map(|&p| (p.label().to_string(), Json::UInt(acc[p.index()])))
                .collect(),
        );
        Json::obj()
            .field("schema", Json::str(SPAN_SCHEMA))
            .field("txns", self.recorded())
            .field("dropped", self.dropped())
            .field("k", k as u64)
            .field(
                "dominant",
                self.dominant(k)
                    .map_or(Json::Null, |p| Json::str(p.label())),
            )
            .field("phases", phases)
            .field(
                "slowest",
                Json::Arr(self.top_slowest(k).iter().map(|t| t.to_json()).collect()),
            )
            .field(
                "most_retried",
                Json::Arr(self.top_retried(k).iter().map(|t| t.to_json()).collect()),
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    #[test]
    fn segments_telescope_to_latency() {
        let mut log = SpanLog::new(1);
        log.slot_start(0, 3, 7, cy(100));
        log.slot_enter(0, ProfPhase::Lock, cy(160));
        log.slot_enter(0, ProfPhase::Commit, cy(200));
        log.slot_abort(0, "record-lock-busy", cy(230));
        log.slot_enter(0, ProfPhase::Exec, cy(260));
        log.slot_enter(0, ProfPhase::Commit, cy(300));
        log.slot_commit(0, cy(340), true);
        let t = &log.txns()[0];
        assert_eq!(t.latency().get(), 240);
        assert_eq!(t.attempts, 2);
        let covered: u64 = t.segments.iter().map(|s| s.cycles()).sum();
        assert_eq!(covered, 240);
        // Contiguity: each segment starts where the previous ended.
        for w in t.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(t.segments.first().unwrap().start, cy(100));
        assert_eq!(t.segments.last().unwrap().end, cy(340));
        assert_eq!(t.aborts.len(), 1);
        assert_eq!(t.aborts[0].attempt, 1);
        assert_eq!(t.aborts[0].by, None);
    }

    #[test]
    fn backward_transition_never_double_counts() {
        let mut log = SpanLog::new(1);
        log.slot_start(0, 0, 0, cy(0));
        log.slot_enter(0, ProfPhase::Commit, cy(100)); // cursor ahead
        log.slot_abort(0, "wrtx-conflict", cy(70)); // squash behind
        log.slot_enter(0, ProfPhase::Exec, cy(130));
        log.slot_commit(0, cy(150), true);
        let t = &log.txns()[0];
        let covered: u64 = t.segments.iter().map(|s| s.cycles()).sum();
        assert_eq!(covered, 150);
        let acc = t.phase_cycles();
        assert_eq!(acc[ProfPhase::Exec.index()], 100 + 20);
        assert_eq!(acc[ProfPhase::Backoff.index()], 30);
    }

    #[test]
    fn rounds_and_sources_are_recorded() {
        let mut log = SpanLog::new(1);
        log.slot_start(0, 1, 0, cy(0));
        log.round_begin(0, Verb::Intend, 2, cy(50));
        log.round_end(0, cy(90));
        log.abort_source(0, 9);
        log.slot_abort(0, "lazy-conflict", cy(95));
        log.slot_enter(0, ProfPhase::Exec, cy(120));
        log.round_begin(0, Verb::Intend, 2, cy(150));
        // Commit cuts the still-open round.
        log.slot_commit(0, cy(180), true);
        let t = &log.txns()[0];
        assert_eq!(t.rounds.len(), 2);
        assert_eq!(t.rounds[0].verb, Verb::Intend);
        assert_eq!(t.rounds[0].end, cy(90));
        assert_eq!(t.rounds[0].attempt, 1);
        assert_eq!(t.rounds[1].attempt, 2);
        assert_eq!(t.rounds[1].end, cy(180));
        assert_eq!(t.aborts[0].by, Some(9));
    }

    #[test]
    fn idle_and_unrecorded_slots_leave_no_trace() {
        let mut log = SpanLog::new(1);
        log.slot_enter(0, ProfPhase::Commit, cy(10));
        log.slot_abort(0, "x", cy(20));
        log.slot_commit(0, cy(30), true);
        assert_eq!(log.recorded(), 0);
        // Warmup commit: flushed but not retained.
        log.slot_start(0, 0, 0, cy(0));
        log.slot_commit(0, cy(50), false);
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn analyzer_ranks_deterministically() {
        let mut log = SpanLog::new(3);
        for (si, (start, end)) in [(0u64, 100u64), (10, 400), (20, 150)].iter().enumerate() {
            log.slot_start(si, si as u16, 0, cy(*start));
            log.slot_enter(si, ProfPhase::Commit, cy(*start + 10));
            log.slot_commit(si, cy(*end), true);
        }
        let slow = log.top_slowest(2);
        assert_eq!(slow[0].node, 1); // 390 cycles
        assert_eq!(slow[1].node, 2); // 130 cycles
                                     // Commit dominates every transaction here.
        assert_eq!(log.dominant(10), Some(ProfPhase::Commit));
        let doc = log.tail_json(10);
        assert_eq!(doc.get("txns").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("dominant").unwrap().as_str(), Some("commit"));
        assert_eq!(doc.get("slowest").unwrap().as_arr().unwrap().len(), 3);
    }
}
