//! The metrics registry: named counters and cycle histograms.
//!
//! A [`MetricsRegistry`] can be fed directly (`inc` / `observe`) or
//! derived wholesale from a recorded trace with
//! [`MetricsRegistry::from_events`], which reconstructs abort-reason
//! counts, verb traffic, Bloom-filter activity, and per-phase cycle
//! histograms. Iteration order is sorted by name (`BTreeMap`), so two
//! registries built from identical runs export identical JSON.

use crate::event::{EventKind, TraceEvent};
use crate::json::Json;
use hades_sim::stats::Histogram;
use hades_sim::time::Cycles;
use std::collections::BTreeMap;

/// Named counters plus named cycle histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds 1 to counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one cycle observation into histogram `name`.
    pub fn observe(&mut self, name: &str, value: Cycles) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// The histogram `name`, if it has been observed into.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Rebuilds the standard metric set from a recorded trace.
    ///
    /// Counter names are `<category>.<detail>` (e.g. `txn.commit`,
    /// `abort.wrtx-conflict`, `verb.sent.intend`, `bloom.false_positive`,
    /// `lock.stall`); histograms are `phase.<phase>` (cycles spent per
    /// phase instance) and `txn.latency` (begin→commit).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut reg = MetricsRegistry::new();
        // Open-phase start times and txn-begin times, per (node, slot).
        let mut phase_open: BTreeMap<(u16, u32, &'static str), Cycles> = BTreeMap::new();
        let mut txn_open: BTreeMap<(u16, u32), Cycles> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                EventKind::TxnBegin { .. } => {
                    reg.inc("txn.begin");
                    txn_open.insert((ev.node, ev.slot), ev.at);
                }
                EventKind::PhaseBegin(p) => {
                    phase_open.insert((ev.node, ev.slot, p.label()), ev.at);
                }
                EventKind::PhaseEnd(p) => {
                    if let Some(start) = phase_open.remove(&(ev.node, ev.slot, p.label())) {
                        reg.observe(&format!("phase.{}", p.label()), ev.at.saturating_sub(start));
                    }
                }
                EventKind::TxnCommit => {
                    reg.inc("txn.commit");
                    if let Some(start) = txn_open.remove(&(ev.node, ev.slot)) {
                        reg.observe("txn.latency", ev.at.saturating_sub(start));
                    }
                }
                EventKind::TxnAbort { reason } => {
                    reg.inc("txn.abort");
                    reg.inc(&format!("abort.{reason}"));
                    txn_open.remove(&(ev.node, ev.slot));
                }
                EventKind::VerbSend { verb, bytes, .. } => {
                    reg.inc(&format!("verb.sent.{}", verb.label()));
                    reg.add("net.bytes_sent", bytes as u64);
                }
                EventKind::VerbRecv { verb, .. } => {
                    reg.inc(&format!("verb.recv.{}", verb.label()));
                }
                EventKind::BloomInsert { site } => {
                    reg.inc(&format!("bloom.insert.{}", site.label()));
                }
                EventKind::BloomProbe { hit } => {
                    reg.inc("bloom.probe");
                    if hit {
                        reg.inc("bloom.probe_hit");
                    }
                }
                EventKind::BloomFalsePositive => reg.inc("bloom.false_positive"),
                EventKind::LockAcquire { .. } => reg.inc("lock.acquire"),
                EventKind::LockStall { .. } => reg.inc("lock.stall"),
                EventKind::FaultInjected { fault } => {
                    reg.inc(&format!("fault.{}", fault.label()));
                }
                EventKind::Recovery { action } => {
                    reg.inc(&format!("recovery.{}", action.label()));
                }
                EventKind::AdmissionThrottled => reg.inc("overload.admission_throttled"),
                EventKind::DegradedCommit => reg.inc("overload.degraded_commit"),
                EventKind::StarvationBoost { .. } => reg.inc("overload.starvation_boost"),
                EventKind::EpochChange { .. } => reg.inc("membership.epoch_change"),
                EventKind::Promotion { .. } => reg.inc("membership.promotion"),
                EventKind::VerbFenced { .. } => reg.inc("membership.verb_fenced"),
                EventKind::BatchFlushed { size, .. } => {
                    reg.inc("batch.flushed");
                    reg.add("batch.verbs", size as u64);
                }
                EventKind::BatchCoalesced { .. } => reg.inc("batch.coalesced"),
                EventKind::MigrationStart { .. } => reg.inc("migration.start"),
                EventKind::ChunkMigrated { .. } => reg.inc("migration.chunk"),
                EventKind::MigrationCutover { .. } => reg.inc("migration.cutover"),
                EventKind::LinkCut { .. } => reg.inc("fault.link_cut_window"),
                EventKind::LinkHealed { .. } => reg.inc("fault.link_healed"),
                EventKind::SelfFenced { .. } => reg.inc("membership.self_fenced"),
                EventKind::QuorumLost { .. } => reg.inc("membership.quorum_lost"),
            }
        }
        reg
    }

    /// Exports the registry as a JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, mean_us, ...}}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| (k.clone(), histogram_json(h)))
                .collect(),
        );
        Json::obj()
            .field("counters", counters)
            .field("histograms", histograms)
            .build()
    }
}

/// Summarizes a histogram for export (counts plus µs quantiles).
pub fn histogram_json(h: &Histogram) -> Json {
    Json::obj()
        .field("count", h.count())
        .field("mean_us", h.mean().as_micros())
        .field("p50_us", h.percentile(50.0).as_micros())
        .field("p95_us", h.percentile(95.0).as_micros())
        .field("p99_us", h.percentile(99.0).as_micros())
        .field("p999_us", h.percentile(99.9).as_micros())
        .field("max_us", h.max().as_micros())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, Verb, NO_SLOT};

    fn ev(at: u64, node: u16, slot: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: Cycles::new(at),
            node,
            slot,
            kind,
        }
    }

    #[test]
    fn counters_and_histograms_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.inc("a");
        reg.add("a", 2);
        reg.observe("h", Cycles::new(10));
        assert_eq!(reg.counter("a"), 3);
        assert_eq!(reg.histogram("h").unwrap().count(), 1);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn from_events_reconstructs_lifecycle() {
        let events = [
            ev(0, 0, 0, EventKind::TxnBegin { attempt: 1 }),
            ev(0, 0, 0, EventKind::PhaseBegin(Phase::Exec)),
            ev(100, 0, 0, EventKind::PhaseEnd(Phase::Exec)),
            ev(
                100,
                0,
                0,
                EventKind::VerbSend {
                    verb: Verb::Intend,
                    dst: 1,
                    bytes: 96,
                },
            ),
            ev(
                150,
                1,
                NO_SLOT,
                EventKind::VerbRecv {
                    verb: Verb::Intend,
                    src: 0,
                    bytes: 96,
                },
            ),
            ev(200, 0, 0, EventKind::TxnCommit),
            ev(210, 0, 1, EventKind::TxnBegin { attempt: 1 }),
            ev(250, 0, 1, EventKind::TxnAbort { reason: "conflict" }),
        ];
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.counter("txn.begin"), 2);
        assert_eq!(reg.counter("txn.commit"), 1);
        assert_eq!(reg.counter("abort.conflict"), 1);
        assert_eq!(reg.counter("verb.sent.intend"), 1);
        assert_eq!(reg.counter("verb.recv.intend"), 1);
        assert_eq!(reg.counter("net.bytes_sent"), 96);
        assert_eq!(reg.histogram("phase.exec").unwrap().count(), 1);
        assert_eq!(
            reg.histogram("txn.latency").unwrap().max(),
            Cycles::new(200)
        );
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("x");
        b.add("x", 4);
        b.observe("h", Cycles::new(7));
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn json_export_is_sorted_and_deterministic() {
        let mut reg = MetricsRegistry::new();
        reg.inc("zeta");
        reg.inc("alpha");
        let s = reg.to_json().render();
        assert!(s.find("alpha").unwrap() < s.find("zeta").unwrap());
        assert_eq!(s, reg.to_json().render());
    }
}
