//! The phase profiler: per-transaction sim-time attribution.
//!
//! [`PhaseProfile`] is a config-gated accumulator (enabled with
//! `SimConfig::with_profiling()`) the three protocol engines drive from
//! their state machines. Every committed transaction's wall time — from
//! the first attempt's start to the final commit, including all squashed
//! attempts — is split across the six [`ProfPhase`] buckets, and every
//! fabric verb's NIC-to-NIC flight time is charged to its verb kind.
//!
//! Two invariants (tested in `tests/bench_determinism.rs`):
//!
//! * **Byte identity off.** A disabled profiler records nothing, draws
//!   no RNG, and leaves every export byte-identical to a build without
//!   the profiler.
//! * **Sum exactness on.** Per-phase totals sum exactly to the summed
//!   end-to-end latency of the committed transactions: the slot
//!   state machine always attributes the full `[first_start, commit]`
//!   interval to some phase (time between an abort and the retry's
//!   start is backoff).
//!
//! Phase attribution is engine-specific (DESIGN.md §12): the baseline
//! has a real lock phase; HADES validates in hardware inside commit
//! distribution; replication shows up only for HADES with `degree > 0`.
//! Aborted attempts count toward the committing attempt's phases, so
//! wasted execution appears as extra `exec`/`backoff` time rather than
//! disappearing.

use crate::event::Verb;
use crate::json::Json;
use crate::registry::histogram_json;
use hades_sim::stats::Histogram;
use hades_sim::time::Cycles;

/// Where a committed transaction's time went. A superset of the
/// four-phase trace taxonomy ([`crate::event::Phase`]): replication and
/// backoff are invisible to the per-attempt trace but first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfPhase {
    /// Application logic plus data fetches (all attempts).
    Exec,
    /// Baseline write-lock acquisition (and pessimistic-fallback
    /// pre-locking time beyond the first grab).
    Lock,
    /// Read-set validation: baseline version checks, HADES-H local
    /// software validation.
    Validate,
    /// Commit distribution: Intend/Ack round trips, hardware checks,
    /// write-back, unlock.
    Commit,
    /// Waiting on replica persists (HADES with `repl.degree > 0`).
    Replication,
    /// Squash-to-restart gaps: backoff delays and admission retries.
    Backoff,
}

impl ProfPhase {
    /// Every phase, in lifecycle order.
    pub const ALL: [ProfPhase; 6] = [
        ProfPhase::Exec,
        ProfPhase::Lock,
        ProfPhase::Validate,
        ProfPhase::Commit,
        ProfPhase::Replication,
        ProfPhase::Backoff,
    ];

    /// Number of phase kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for accumulator arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name used in exports.
    pub const fn label(self) -> &'static str {
        match self {
            ProfPhase::Exec => "exec",
            ProfPhase::Lock => "lock",
            ProfPhase::Validate => "validate",
            ProfPhase::Commit => "commit",
            ProfPhase::Replication => "replication",
            ProfPhase::Backoff => "backoff",
        }
    }
}

/// Per-slot attribution state: the open phase and the per-phase cycles
/// accumulated by the slot's current transaction (across attempts).
#[derive(Debug, Clone, Copy)]
struct SlotProf {
    /// Sim time at which the open phase began.
    mark: Cycles,
    /// The currently open phase.
    phase: ProfPhase,
    /// Cycles accumulated per phase since the transaction's first start.
    acc: [u64; ProfPhase::COUNT],
    /// Whether a transaction is being attributed in this slot.
    active: bool,
}

impl SlotProf {
    const IDLE: SlotProf = SlotProf {
        mark: Cycles::ZERO,
        phase: ProfPhase::Exec,
        acc: [0; ProfPhase::COUNT],
        active: false,
    };
}

/// The profiler: per-phase totals and per-transaction distributions,
/// plus per-verb fabric-time accounting.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    slots: Vec<SlotProf>,
    /// Total cycles per phase, over measured committed transactions.
    phase_total: [u64; ProfPhase::COUNT],
    /// Per-transaction cycles-in-phase distributions.
    phase_hist: [Histogram; ProfPhase::COUNT],
    /// Measured committed transactions flushed into the totals.
    txns: u64,
    /// Fabric flight cycles per verb (all messages, whole run).
    verb_cycles: [u64; Verb::COUNT],
    /// Messages sent per verb (all messages, whole run).
    verb_msgs: [u64; Verb::COUNT],
}

impl PhaseProfile {
    /// Creates a profiler for a cluster with `total_slots` slots.
    pub fn new(total_slots: usize) -> Self {
        PhaseProfile {
            slots: vec![SlotProf::IDLE; total_slots],
            phase_total: [0; ProfPhase::COUNT],
            phase_hist: std::array::from_fn(|_| Histogram::new()),
            txns: 0,
            verb_cycles: [0; Verb::COUNT],
            verb_msgs: [0; Verb::COUNT],
        }
    }

    /// A fresh transaction starts in slot `si`: attribution begins at
    /// `now` in [`ProfPhase::Exec`].
    pub fn slot_start(&mut self, si: usize, now: Cycles) {
        self.slots[si] = SlotProf {
            mark: now,
            phase: ProfPhase::Exec,
            acc: [0; ProfPhase::COUNT],
            active: true,
        };
    }

    /// The slot's transaction moves to `phase` at `now`; the interval
    /// since the last transition is charged to the previous phase.
    /// Re-entering the open phase just accumulates. Ignored while no
    /// transaction is active (e.g. warmup carry-over).
    ///
    /// The mark never moves backward: engines sometimes open a phase at
    /// a core-time cursor ahead of the event clock (commit distribution),
    /// and a squash delivered in between must not re-charge the interval
    /// already attributed to the open phase.
    pub fn slot_enter(&mut self, si: usize, phase: ProfPhase, now: Cycles) {
        let s = &mut self.slots[si];
        if !s.active {
            return;
        }
        s.acc[s.phase.index()] += now.saturating_sub(s.mark).get();
        s.mark = s.mark.max(now);
        s.phase = phase;
    }

    /// The slot's transaction committed at `now`. When `record` is true
    /// (the run is in its measurement window) the accumulated phases are
    /// flushed into the totals and histograms; either way the slot
    /// returns to idle.
    pub fn slot_commit(&mut self, si: usize, now: Cycles, record: bool) {
        let s = &mut self.slots[si];
        if !s.active {
            return;
        }
        s.acc[s.phase.index()] += now.saturating_sub(s.mark).get();
        let acc = s.acc;
        if record {
            self.txns += 1;
            for (i, &cycles) in acc.iter().enumerate() {
                self.phase_total[i] += cycles;
                self.phase_hist[i].record(Cycles::new(cycles));
            }
        }
        self.slots[si] = SlotProf::IDLE;
    }

    /// Charges one fabric message's flight time to its verb.
    pub fn record_verb(&mut self, verb: Verb, flight: Cycles) {
        self.verb_msgs[verb.index()] += 1;
        self.verb_cycles[verb.index()] += flight.get();
    }

    /// Measured committed transactions flushed into the totals.
    pub fn txns(&self) -> u64 {
        self.txns
    }

    /// Total cycles charged to `phase` over all measured transactions.
    pub fn phase_cycles(&self, phase: ProfPhase) -> u64 {
        self.phase_total[phase.index()]
    }

    /// Sum of all phase totals — equals the summed end-to-end latency
    /// of the measured committed transactions.
    pub fn total_cycles(&self) -> u64 {
        self.phase_total.iter().sum()
    }

    /// Messages recorded for `verb`.
    pub fn verb_msgs(&self, verb: Verb) -> u64 {
        self.verb_msgs[verb.index()]
    }

    /// Fabric flight cycles recorded for `verb`.
    pub fn verb_cycles(&self, verb: Verb) -> u64 {
        self.verb_cycles[verb.index()]
    }

    /// Exports the profile:
    /// `{"txns", "total_cycles", "phases": {name: {"cycles", "share",
    /// "per_txn": {...}}}, "verbs": {name: {"msgs", "fabric_cycles"}}}`.
    /// Phases always render all six buckets (stable schema); verbs render
    /// only those seen, in declaration order.
    pub fn to_json(&self) -> Json {
        let total = self.total_cycles();
        let phases = Json::Obj(
            ProfPhase::ALL
                .iter()
                .map(|&p| {
                    let cycles = self.phase_cycles(p);
                    let share = if total == 0 {
                        0.0
                    } else {
                        cycles as f64 / total as f64
                    };
                    (
                        p.label().to_string(),
                        Json::obj()
                            .field("cycles", cycles)
                            .field("share", share)
                            .field("per_txn", histogram_json(&self.phase_hist[p.index()]))
                            .build(),
                    )
                })
                .collect(),
        );
        let verbs = Json::Obj(
            Verb::ALL
                .iter()
                .filter(|&&v| self.verb_msgs(v) > 0)
                .map(|&v| {
                    (
                        v.label().to_string(),
                        Json::obj()
                            .field("msgs", self.verb_msgs(v))
                            .field("fabric_cycles", self.verb_cycles(v))
                            .build(),
                    )
                })
                .collect(),
        );
        Json::obj()
            .field("txns", self.txns)
            .field("total_cycles", total)
            .field("phases", phases)
            .field("verbs", verbs)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indexes_are_dense_and_stable() {
        for (i, p) in ProfPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(ProfPhase::COUNT, 6);
        assert_eq!(ProfPhase::Replication.label(), "replication");
    }

    #[test]
    fn attribution_splits_the_full_interval() {
        let mut p = PhaseProfile::new(2);
        p.slot_start(0, Cycles::new(100));
        p.slot_enter(0, ProfPhase::Commit, Cycles::new(160));
        p.slot_enter(0, ProfPhase::Backoff, Cycles::new(200));
        p.slot_enter(0, ProfPhase::Exec, Cycles::new(230));
        p.slot_enter(0, ProfPhase::Commit, Cycles::new(280));
        p.slot_commit(0, Cycles::new(300), true);
        assert_eq!(p.txns(), 1);
        assert_eq!(p.phase_cycles(ProfPhase::Exec), 60 + 50);
        assert_eq!(p.phase_cycles(ProfPhase::Commit), 40 + 20);
        assert_eq!(p.phase_cycles(ProfPhase::Backoff), 30);
        // Sum exactness: everything between start (100) and commit (300).
        assert_eq!(p.total_cycles(), 200);
    }

    #[test]
    fn reentering_open_phase_accumulates() {
        let mut p = PhaseProfile::new(1);
        p.slot_start(0, Cycles::new(0));
        p.slot_enter(0, ProfPhase::Commit, Cycles::new(10));
        p.slot_enter(0, ProfPhase::Commit, Cycles::new(25));
        p.slot_commit(0, Cycles::new(40), true);
        assert_eq!(p.phase_cycles(ProfPhase::Exec), 10);
        assert_eq!(p.phase_cycles(ProfPhase::Commit), 30);
        assert_eq!(p.total_cycles(), 40);
    }

    #[test]
    fn unrecorded_commits_and_idle_slots_leave_no_trace() {
        let mut p = PhaseProfile::new(1);
        // Warmup transaction: flushed but not recorded.
        p.slot_start(0, Cycles::new(0));
        p.slot_commit(0, Cycles::new(50), false);
        // Transitions on an idle slot are ignored.
        p.slot_enter(0, ProfPhase::Commit, Cycles::new(60));
        p.slot_commit(0, Cycles::new(70), true);
        assert_eq!(p.txns(), 0);
        assert_eq!(p.total_cycles(), 0);
    }

    #[test]
    fn backward_transition_never_double_charges() {
        // A phase opened at a future core-time cursor followed by a
        // squash at an earlier event time: the overlap stays charged to
        // the open phase once, and the total still telescopes exactly.
        let mut p = PhaseProfile::new(1);
        p.slot_start(0, Cycles::new(0));
        p.slot_enter(0, ProfPhase::Commit, Cycles::new(100)); // cursor ahead
        p.slot_enter(0, ProfPhase::Backoff, Cycles::new(70)); // squash behind
        p.slot_enter(0, ProfPhase::Exec, Cycles::new(130)); // retry
        p.slot_commit(0, Cycles::new(150), true);
        assert_eq!(p.phase_cycles(ProfPhase::Exec), 100 + 20);
        assert_eq!(p.phase_cycles(ProfPhase::Backoff), 30);
        assert_eq!(p.total_cycles(), 150);
    }

    #[test]
    fn verb_accounting_and_json_shape() {
        let mut p = PhaseProfile::new(1);
        p.record_verb(Verb::Intend, Cycles::new(2_000));
        p.record_verb(Verb::Intend, Cycles::new(2_200));
        p.record_verb(Verb::Ack, Cycles::new(1_900));
        assert_eq!(p.verb_msgs(Verb::Intend), 2);
        assert_eq!(p.verb_cycles(Verb::Intend), 4_200);
        p.slot_start(0, Cycles::new(0));
        p.slot_commit(0, Cycles::new(100), true);
        let doc = p.to_json();
        let phases = doc.get("phases").unwrap();
        assert_eq!(
            phases.get("exec").unwrap().get("cycles").unwrap().as_u64(),
            Some(100)
        );
        // All six phases render even when zero; unseen verbs are omitted.
        for ph in ProfPhase::ALL {
            assert!(phases.get(ph.label()).is_some(), "{}", ph.label());
        }
        let verbs = doc.get("verbs").unwrap();
        assert!(verbs.get("intend").is_some());
        assert!(verbs.get("read").is_none());
        assert_eq!(doc.get("total_cycles").unwrap().as_u64(), Some(100));
    }
}
