//! # hades-fault — deterministic fault injection and recovery accounting
//!
//! The paper's Section V-A outlines fault tolerance (replica writes,
//! durable persists before Ack, two-phase commit turning lost messages
//! into clean aborts) without evaluating it. This crate provides the
//! machinery to *create* those failure scenarios reproducibly: a
//! [`FaultPlan`] describes which faults to inject (per-verb message
//! drop/duplication/delay/reorder, node crash/restart windows, NIC stall
//! windows, replica-persist failures, exact-cycle scheduled drops), and a
//! [`FaultInjector`] samples the plan from its own seeded RNG stream so
//! the surrounding simulation's randomness is never perturbed.
//!
//! Determinism contract:
//!
//! * An **inert** plan ([`FaultPlan::is_inert`]) consumes no randomness
//!   and injects nothing — runs are byte-identical to an injector-free
//!   build.
//! * A non-inert plan owns a private `xoshiro256**` stream seeded from
//!   [`FaultPlan::seed`]; the same config + seed + plan replays the exact
//!   same fault schedule.
//!
//! Verbs fall into two classes (see [`FaultClass`]):
//!
//! * **Lossy** verbs (Intend, Ack, LockResp, ValidateResp,
//!   ReplicaPrepare, ReplicaAck) are commit-handshake messages whose loss
//!   the protocol engines recover from end-to-end (commit timeouts,
//!   abort, retry). A drop really removes the message; duplication
//!   delivers two copies (engines deduplicate by sequence id).
//! * **Retransmit** verbs (everything else: reads, validations, clears,
//!   squashes, writes, unlocks) ride the reliable transport — RDMA RC
//!   retransmits them in hardware. A "drop" therefore surfaces as extra
//!   latency: the injector charges one [`RetryPolicy`] backoff step per
//!   lost attempt and always delivers exactly one copy, which keeps
//!   non-idempotent messages (e.g. RMW write-backs) exactly-once.

#![warn(missing_docs)]

use hades_sim::backoff::BackoffPolicy;
use hades_sim::rng::SimRng;
use hades_sim::time::Cycles;
use hades_telemetry::event::Verb;
use hades_telemetry::json::Json;

pub use hades_telemetry::event::{InjectedFault, RecoveryKind};

/// Maximum in-injector retransmit attempts charged for one message on the
/// reliable (Retransmit-class) path before the message goes through
/// regardless.
pub const MAX_RETRANSMIT: u32 = 8;

/// Default coordinator/participant lease (320 µs at 2 GHz): a participant
/// that granted a Locking Buffer releases it when the lease expires
/// without a Validation or Clear, converting a crashed coordinator's
/// partial locks into a clean squash.
pub const DEFAULT_LEASE: Cycles = Cycles::new(640_000);

/// How a verb's faults are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Loss is real: the message disappears and the protocol's own
    /// timeout/abort machinery recovers.
    Lossy,
    /// Loss becomes hardware retransmission latency; delivery is
    /// exactly-once.
    Retransmit,
}

/// The fault class of `verb`.
pub const fn class_of(verb: Verb) -> FaultClass {
    match verb {
        Verb::Intend
        | Verb::Ack
        | Verb::LockResp
        | Verb::ValidateResp
        | Verb::ReplicaPrepare
        | Verb::ReplicaAck => FaultClass::Lossy,
        _ => FaultClass::Retransmit,
    }
}

/// Per-verb fault probabilities and magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerbFaults {
    /// Probability a message is dropped (Lossy class) or charged a
    /// retransmit step (Retransmit class).
    pub drop_p: f64,
    /// Probability a Lossy-class message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is delayed by [`VerbFaults::delay`].
    pub delay_p: f64,
    /// Extra latency applied on a sampled delay.
    pub delay: Cycles,
    /// Probability a message receives uniform jitter in
    /// `[0, reorder_window)`, letting later sends overtake it.
    pub reorder_p: f64,
    /// Jitter window for reordering (and for spacing duplicate copies).
    pub reorder_window: Cycles,
}

impl VerbFaults {
    /// No faults on this verb.
    pub const NONE: VerbFaults = VerbFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        delay_p: 0.0,
        delay: Cycles::ZERO,
        reorder_p: 0.0,
        reorder_window: Cycles::ZERO,
    };

    /// Whether every probability is zero.
    pub fn is_inert(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0 && self.reorder_p == 0.0
    }
}

impl Default for VerbFaults {
    fn default() -> Self {
        VerbFaults::NONE
    }
}

/// A scheduled node crash: the node loses all in-flight transaction state
/// at `at` and — unless the crash is permanent — comes back (replaying
/// durable replica state) at `restart_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing node.
    pub node: u16,
    /// Crash time.
    pub at: Cycles,
    /// Restart time (must be after `at`); `None` for a permanent crash
    /// ([`FaultPlan::crash_forever`]) — the node never comes back and
    /// recovery relies on the membership/failover layer.
    pub restart_at: Option<Cycles>,
}

impl CrashEvent {
    /// Whether this crash is permanent (no scheduled restart).
    pub fn is_forever(&self) -> bool {
        self.restart_at.is_none()
    }
}

/// A NIC stall window: messages arriving at `node` inside `[from, until)`
/// are held and delivered at `until` (a PCIe/firmware hiccup model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicStall {
    /// The stalled node.
    pub node: u16,
    /// Stall window start (inclusive).
    pub from: Cycles,
    /// Stall window end (exclusive); held messages deliver here.
    pub until: Cycles,
}

/// A directed link cut: messages sent from `src` to `dst` inside
/// `[from, until)` are lost (Lossy class) or held by hardware
/// retransmission until the link heals at `until` (Retransmit class).
/// The reverse direction is unaffected — build symmetric cuts and group
/// partitions with [`FaultPlan::cut_link_sym`] / [`FaultPlan::partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkCut {
    /// Sending side of the cut direction.
    pub src: u16,
    /// Receiving side of the cut direction.
    pub dst: u16,
    /// Window start (inclusive).
    pub from: Cycles,
    /// Window end (exclusive); the link heals here.
    pub until: Cycles,
    /// Bookkeeping: a `LinkCut` trace event was emitted for this window.
    pub announced: bool,
    /// Bookkeeping: a `LinkHealed` trace event was emitted for this window.
    pub healed: bool,
}

/// A flapping directed link: inside `[from, until)` the link cycles
/// through a duty cycle of `period` cycles, up for `up` of them and down
/// for the rest. The phase offset is derived deterministically from the
/// plan seed and the endpoints, so reruns replay the identical flap
/// schedule without consuming injector randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlap {
    /// Sending side of the flapping direction.
    pub src: u16,
    /// Receiving side of the flapping direction.
    pub dst: u16,
    /// Window start (inclusive).
    pub from: Cycles,
    /// Window end (exclusive); the link heals for good here.
    pub until: Cycles,
    /// Duty-cycle length.
    pub period: Cycles,
    /// Up portion of each period (the remainder is down).
    pub up: Cycles,
    /// Bookkeeping: a `LinkCut` trace event was emitted for this window.
    pub announced: bool,
    /// Bookkeeping: a `LinkHealed` trace event was emitted for this window.
    pub healed: bool,
}

impl LinkFlap {
    /// Seed-derived phase offset in `[0, period)` — splitmix64 over the
    /// plan seed and the link endpoints, so every (src, dst) pair flaps
    /// on its own deterministic schedule.
    fn phase(&self, seed: u64) -> u64 {
        let mut z = seed ^ ((self.src as u64) << 32) ^ ((self.dst as u64) << 16) ^ self.from.get();
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % self.period.get()
    }

    /// If the link is down for a send at `now` (inside the window),
    /// returns when the current down span ends; `None` while up. RNG-free.
    fn release_at(&self, seed: u64, now: Cycles) -> Option<Cycles> {
        let phase = self.phase(seed);
        let rel = now.get() - self.from.get() + phase;
        let pos = rel % self.period.get();
        if pos < self.up.get() {
            None
        } else {
            let next_up = rel - pos + self.period.get();
            Some(Cycles::new(self.from.get() + next_up - phase))
        }
    }
}

/// A gray node: every message to or from `node` inside `[from, until)`
/// takes `factor`× the fabric latency, without any loss. Models a
/// slow-but-alive NIC/host that must degrade service, not split the
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowNode {
    /// The gray node.
    pub node: u16,
    /// Window start (inclusive).
    pub from: Cycles,
    /// Window end (exclusive).
    pub until: Cycles,
    /// Latency multiplier (>= 2; 1 would be inert and is rejected).
    pub factor: u64,
}

/// A gray directed link: messages from `src` to `dst` inside
/// `[from, until)` take `factor`× the fabric latency, without loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowLink {
    /// Sending side.
    pub src: u16,
    /// Receiving side.
    pub dst: u16,
    /// Window start (inclusive).
    pub from: Cycles,
    /// Window end (exclusive).
    pub until: Cycles,
    /// Latency multiplier (>= 2; 1 would be inert and is rejected).
    pub factor: u64,
}

/// Panics unless `[from, until)` between distinct nodes is a valid link
/// fault window.
fn check_link_window(src: u16, dst: u16, from: Cycles, until: Cycles) {
    assert!(src != dst, "self-link fault on node {src}");
    assert!(
        until > from,
        "empty or inverted link window [{from:?}, {until:?}) on {src}->{dst}"
    );
}

/// A one-shot scheduled drop: the first `verb` message sent at or after
/// `after` is dropped (Lossy class) or charged a retransmit (Retransmit
/// class), deterministically and without consuming randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledDrop {
    /// The targeted verb.
    pub verb: Verb,
    /// Earliest send time the drop applies to.
    pub after: Cycles,
    /// Whether the drop already fired.
    pub fired: bool,
}

/// Exponential backoff schedule for timeout-driven retries: attempt `k`
/// waits `min(base << k, cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry backoff.
    pub base: Cycles,
    /// Backoff ceiling.
    pub cap: Cycles,
}

impl RetryPolicy {
    /// The saturating [`BackoffPolicy`] equivalent of this schedule.
    pub fn policy(&self) -> BackoffPolicy {
        BackoffPolicy::exponential(self.base, self.cap)
    }

    /// The backoff before retry `attempt` (0-based). Delegates to the
    /// shared [`BackoffPolicy`], which saturates on value overflow
    /// (`checked_shl` only guards the shift amount, so the old inline
    /// arithmetic silently truncated large bases and could shrink the
    /// backoff between attempts).
    pub fn step(&self, attempt: u32) -> Cycles {
        self.policy().step(attempt)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Mirrors RetryParams { backoff_base: 500, backoff_cap: 16_000 }.
        RetryPolicy {
            base: Cycles::new(500),
            cap: Cycles::new(16_000),
        }
    }
}

/// A complete, seed-reproducible fault schedule shared by all three
/// protocol engines.
///
/// # Examples
///
/// ```
/// use hades_fault::FaultPlan;
/// use hades_sim::time::Cycles;
/// use hades_telemetry::event::Verb;
///
/// let plan = FaultPlan::none()
///     .with_seed(7)
///     .drop_verb(Verb::Intend, 0.05)
///     .delay_verb(Verb::Validation, 0.1, Cycles::new(4_000))
///     .crash(1, Cycles::new(500_000), Cycles::new(900_000));
/// assert!(!plan.is_inert());
/// assert!(plan.has_crashes());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Per-verb fault knobs, indexed by [`Verb::index`].
    pub verbs: [VerbFaults; Verb::COUNT],
    /// Scheduled node crashes.
    pub crashes: Vec<CrashEvent>,
    /// NIC stall windows.
    pub nic_stalls: Vec<NicStall>,
    /// Directed link-cut windows.
    pub link_cuts: Vec<LinkCut>,
    /// Flapping-link windows.
    pub link_flaps: Vec<LinkFlap>,
    /// Gray (slow-but-alive) node windows.
    pub slow_nodes: Vec<SlowNode>,
    /// Gray (slow-but-lossless) directed link windows.
    pub slow_links: Vec<SlowLink>,
    /// Probability a replica persist fails (the replica NACKs and the
    /// coordinator aborts).
    pub persist_fail_p: f64,
    /// One-shot exact-time drops.
    pub scheduled_drops: Vec<ScheduledDrop>,
    /// Lease duration for crash suspicion (see [`DEFAULT_LEASE`]).
    pub lease: Cycles,
    /// Backoff schedule for timeout-driven retries.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty plan: injects nothing, consumes no randomness.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            verbs: [VerbFaults::NONE; Verb::COUNT],
            crashes: Vec::new(),
            nic_stalls: Vec::new(),
            link_cuts: Vec::new(),
            link_flaps: Vec::new(),
            slow_nodes: Vec::new(),
            slow_links: Vec::new(),
            persist_fail_p: 0.0,
            scheduled_drops: Vec::new(),
            lease: DEFAULT_LEASE,
            retry: RetryPolicy::default(),
        }
    }

    /// The legacy commit-message-loss experiment as a plan: probability
    /// `p` of dropping each commit-handshake (Lossy-class) message.
    pub fn from_loss(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        let mut plan = FaultPlan::none().with_seed(seed);
        if p > 0.0 {
            for verb in Verb::ALL {
                if class_of(verb) == FaultClass::Lossy {
                    plan.verbs[verb.index()].drop_p = p;
                }
            }
        }
        plan
    }

    /// Replaces the injector seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drops `verb` messages with probability `p`.
    pub fn drop_verb(mut self, verb: Verb, p: f64) -> Self {
        self.verbs[verb.index()].drop_p = p;
        self
    }

    /// Duplicates `verb` messages with probability `p` (Lossy class only;
    /// Retransmit-class delivery stays exactly-once).
    pub fn dup_verb(mut self, verb: Verb, p: f64) -> Self {
        self.verbs[verb.index()].dup_p = p;
        self
    }

    /// Delays `verb` messages by `delay` with probability `p`.
    pub fn delay_verb(mut self, verb: Verb, p: f64, delay: Cycles) -> Self {
        let vf = &mut self.verbs[verb.index()];
        vf.delay_p = p;
        vf.delay = delay;
        self
    }

    /// Jitters `verb` messages by up to `window` with probability `p`,
    /// allowing reordering against later sends.
    pub fn reorder_verb(mut self, verb: Verb, p: f64, window: Cycles) -> Self {
        let vf = &mut self.verbs[verb.index()];
        vf.reorder_p = p;
        vf.reorder_window = window;
        self
    }

    /// Crashes `node` at `at`, restarting it at `restart_at`.
    ///
    /// # Panics
    ///
    /// Panics if `restart_at <= at`.
    pub fn crash(mut self, node: u16, at: Cycles, restart_at: Cycles) -> Self {
        assert!(restart_at > at, "restart must come after the crash");
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_at: Some(restart_at),
        });
        self
    }

    /// Crashes `node` at `at` permanently: no restart is ever scheduled.
    /// Recovery (backup promotion, in-flight commit resolution) is the
    /// membership layer's job — see `MembershipParams`.
    pub fn crash_forever(mut self, node: u16, at: Cycles) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_at: None,
        });
        self
    }

    /// Stalls `node`'s NIC for arrivals inside `[from, until)`.
    pub fn nic_stall(mut self, node: u16, from: Cycles, until: Cycles) -> Self {
        assert!(until > from, "empty stall window");
        self.nic_stalls.push(NicStall { node, from, until });
        self
    }

    /// Cuts the directed link `src -> dst` for sends inside
    /// `[from, until)`. The reverse direction keeps flowing (an
    /// asymmetric partition).
    ///
    /// # Panics
    ///
    /// Panics on a self-link (`src == dst`) or an empty/inverted window.
    pub fn cut_link(mut self, src: u16, dst: u16, from: Cycles, until: Cycles) -> Self {
        check_link_window(src, dst, from, until);
        self.link_cuts.push(LinkCut {
            src,
            dst,
            from,
            until,
            announced: false,
            healed: false,
        });
        self
    }

    /// Cuts the link between `a` and `b` in both directions (a symmetric
    /// partition of the pair).
    pub fn cut_link_sym(self, a: u16, b: u16, from: Cycles, until: Cycles) -> Self {
        self.cut_link(a, b, from, until).cut_link(b, a, from, until)
    }

    /// Partitions `group_a` from `group_b`: every cross-group link is cut
    /// in both directions for `[from, until)`. Intra-group links keep
    /// flowing.
    ///
    /// # Panics
    ///
    /// Panics if the groups overlap, either group is empty, or the window
    /// is empty/inverted.
    pub fn partition(
        mut self,
        group_a: &[u16],
        group_b: &[u16],
        from: Cycles,
        until: Cycles,
    ) -> Self {
        assert!(
            !group_a.is_empty() && !group_b.is_empty(),
            "partition groups must be non-empty"
        );
        for &a in group_a {
            for &b in group_b {
                assert!(a != b, "node {a} on both sides of the partition");
                self = self.cut_link_sym(a, b, from, until);
            }
        }
        self
    }

    /// Isolates `node` from every other node in a cluster of `nodes`
    /// (both directions) for `[from, until)`.
    pub fn isolate_node(self, node: u16, nodes: u16, from: Cycles, until: Cycles) -> Self {
        assert!(
            node < nodes,
            "isolated node {node} outside cluster of {nodes}"
        );
        let rest: Vec<u16> = (0..nodes).filter(|&n| n != node).collect();
        self.partition(&[node], &rest, from, until)
    }

    /// Flaps the directed link `src -> dst` inside `[from, until)`: up
    /// for `up` out of every `period` cycles, down for the rest, at a
    /// seed-derived phase.
    ///
    /// # Panics
    ///
    /// Panics on a self-link, an empty/inverted window, a zero period, or
    /// `up >= period` (no down phase — the flap would be inert).
    pub fn flap_link(
        mut self,
        src: u16,
        dst: u16,
        from: Cycles,
        until: Cycles,
        period: Cycles,
        up: Cycles,
    ) -> Self {
        check_link_window(src, dst, from, until);
        assert!(period > Cycles::ZERO, "flap period must be non-zero");
        assert!(
            up < period,
            "flap up time {up:?} leaves no down phase in {period:?}"
        );
        self.link_flaps.push(LinkFlap {
            src,
            dst,
            from,
            until,
            period,
            up,
            announced: false,
            healed: false,
        });
        self
    }

    /// Flaps every link touching `node` (both directions, against all
    /// peers in a cluster of `nodes`) with the same duty cycle.
    pub fn flap_node(
        mut self,
        node: u16,
        nodes: u16,
        from: Cycles,
        until: Cycles,
        period: Cycles,
        up: Cycles,
    ) -> Self {
        assert!(
            node < nodes,
            "flapping node {node} outside cluster of {nodes}"
        );
        for peer in (0..nodes).filter(|&n| n != node) {
            self = self
                .flap_link(node, peer, from, until, period, up)
                .flap_link(peer, node, from, until, period, up);
        }
        self
    }

    /// Makes `node` gray inside `[from, until)`: all its fabric traffic
    /// (both directions) takes `factor`× the normal latency, with no
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics on an empty/inverted window or `factor < 2` (a 1× slowdown
    /// would be inert but still disturb the fast path).
    pub fn slow_node(mut self, node: u16, from: Cycles, until: Cycles, factor: u64) -> Self {
        assert!(until > from, "empty or inverted slow window");
        assert!(factor >= 2, "slow factor {factor} must be >= 2");
        self.slow_nodes.push(SlowNode {
            node,
            from,
            until,
            factor,
        });
        self
    }

    /// Makes the directed link `src -> dst` gray inside `[from, until)`:
    /// `factor`× latency, no loss.
    ///
    /// # Panics
    ///
    /// Panics on a self-link, an empty/inverted window, or `factor < 2`.
    pub fn slow_link(
        mut self,
        src: u16,
        dst: u16,
        from: Cycles,
        until: Cycles,
        factor: u64,
    ) -> Self {
        check_link_window(src, dst, from, until);
        assert!(factor >= 2, "slow factor {factor} must be >= 2");
        self.slow_links.push(SlowLink {
            src,
            dst,
            from,
            until,
            factor,
        });
        self
    }

    /// Fails replica persists with probability `p`.
    pub fn persist_failures(mut self, p: f64) -> Self {
        self.persist_fail_p = p;
        self
    }

    /// Schedules a one-shot drop of the first `verb` sent at or after
    /// `after`.
    pub fn drop_at(mut self, verb: Verb, after: Cycles) -> Self {
        self.scheduled_drops.push(ScheduledDrop {
            verb,
            after,
            fired: false,
        });
        self
    }

    /// Replaces the lease duration.
    pub fn with_lease(mut self, lease: Cycles) -> Self {
        self.lease = lease;
        self
    }

    /// Whether the plan injects nothing at all (and so must leave runs
    /// byte-identical to an un-injected build).
    pub fn is_inert(&self) -> bool {
        self.verbs.iter().all(VerbFaults::is_inert)
            && self.crashes.is_empty()
            && self.nic_stalls.is_empty()
            && self.persist_fail_p == 0.0
            && self.scheduled_drops.is_empty()
            && !self.has_link_faults()
    }

    /// Whether any node crash is scheduled.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// Whether any link-level fault (cut, flap, or gray slowdown) is
    /// scheduled.
    pub fn has_link_faults(&self) -> bool {
        !self.link_cuts.is_empty()
            || !self.link_flaps.is_empty()
            || !self.slow_nodes.is_empty()
            || !self.slow_links.is_empty()
    }

    /// Re-validates every scheduled fault, catching malformed windows in
    /// hand-constructed plans that bypassed the builders. Called by
    /// [`FaultInjector::new`], so a bad plan fails fast at install time
    /// instead of silently misbehaving mid-run.
    ///
    /// # Panics
    ///
    /// Panics on a restart scheduled at or before its crash, an
    /// empty/inverted stall, link, or slow window, a self-link, a
    /// zero-period or always-up flap, or a slow factor below 2.
    pub fn validate(&self) {
        for c in &self.crashes {
            if let Some(r) = c.restart_at {
                assert!(
                    r > c.at,
                    "node {} restart at {r:?} not after its crash at {:?}",
                    c.node,
                    c.at
                );
            }
        }
        for s in &self.nic_stalls {
            assert!(
                s.until > s.from,
                "empty or inverted stall window on node {}",
                s.node
            );
        }
        for l in &self.link_cuts {
            check_link_window(l.src, l.dst, l.from, l.until);
        }
        for f in &self.link_flaps {
            check_link_window(f.src, f.dst, f.from, f.until);
            assert!(f.period > Cycles::ZERO, "flap period must be non-zero");
            assert!(
                f.up < f.period,
                "flap up time {:?} leaves no down phase in {:?}",
                f.up,
                f.period
            );
        }
        for s in &self.slow_nodes {
            assert!(s.until > s.from, "empty or inverted slow window");
            assert!(s.factor >= 2, "slow factor {} must be >= 2", s.factor);
        }
        for s in &self.slow_links {
            check_link_window(s.src, s.dst, s.from, s.until);
            assert!(s.factor >= 2, "slow factor {} must be >= 2", s.factor);
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages dropped (both classes; Retransmit-class drops were
    /// recovered by hardware retransmission).
    pub drops: u64,
    /// Messages delivered twice.
    pub dups: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Messages jittered for reordering.
    pub reorders: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Node restarts.
    pub restarts: u64,
    /// Messages held by a NIC stall window.
    pub nic_stalls: u64,
    /// Replica persists that failed.
    pub persist_fails: u64,
    /// Messages blocked by a cut or flapped-down link (Lossy class lost;
    /// Retransmit class held until the link healed).
    pub link_cuts: u64,
    /// Messages slowed by a gray node or link.
    pub slowdowns: u64,
}

impl FaultCounts {
    /// Whether nothing was injected.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounts::default()
    }

    /// JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("drops", Json::UInt(self.drops))
            .field("dups", Json::UInt(self.dups))
            .field("delays", Json::UInt(self.delays))
            .field("reorders", Json::UInt(self.reorders))
            .field("crashes", Json::UInt(self.crashes))
            .field("restarts", Json::UInt(self.restarts))
            .field("nic_stalls", Json::UInt(self.nic_stalls))
            .field("persist_fails", Json::UInt(self.persist_fails))
            .field("link_cuts", Json::UInt(self.link_cuts))
            .field("slowdowns", Json::UInt(self.slowdowns))
            .build()
    }
}

/// Counts of recovery actions the protocol engines took in response to
/// injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Timeout-driven retries/aborts (lost handshake messages recovered
    /// by the commit-timeout path, plus hardware retransmissions).
    pub timeout_retries: u64,
    /// Participant leases that expired and released a Locking Buffer
    /// held on behalf of a suspected-crashed coordinator.
    pub lease_expiries: u64,
    /// Replica log entries replayed on node restart.
    pub replica_replays: u64,
}

impl RecoveryCounts {
    /// Whether no recovery action was taken.
    pub fn is_zero(&self) -> bool {
        *self == RecoveryCounts::default()
    }

    /// JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("timeout_retries", Json::UInt(self.timeout_retries))
            .field("lease_expiries", Json::UInt(self.lease_expiries))
            .field("replica_replays", Json::UInt(self.replica_replays))
            .build()
    }
}

/// The outcome of injecting faults into one message send.
#[derive(Debug, Clone, Default)]
pub struct SendFaults {
    /// Extra delay of each delivered copy (empty = message lost; two
    /// entries = duplicated).
    pub copies: Vec<Cycles>,
    /// Faults injected into this send, for tracing.
    pub injected: Vec<InjectedFault>,
    /// Recovery actions implied by this send (hardware retransmissions),
    /// for tracing.
    pub recovered: Vec<RecoveryKind>,
    /// Link-fault windows on this (src, dst) pair that became active for
    /// the first time at this send — one `LinkCut` trace event each.
    pub cut_links: Vec<(u16, u16)>,
    /// Link-fault windows on this pair whose end passed by this send —
    /// one `LinkHealed` trace event each.
    pub healed_links: Vec<(u16, u16)>,
}

/// Samples a [`FaultPlan`] against live traffic, from a private RNG
/// stream, and accumulates fault/recovery counters.
///
/// # Examples
///
/// ```
/// use hades_fault::{FaultInjector, FaultPlan};
/// use hades_sim::time::Cycles;
/// use hades_telemetry::event::Verb;
///
/// let plan = FaultPlan::none().with_seed(3).drop_verb(Verb::Intend, 1.0);
/// let mut inj = FaultInjector::new(plan);
/// let out = inj.on_send(Cycles::ZERO, Verb::Intend, 0, 1);
/// assert!(out.copies.is_empty(), "drop_p=1 loses every Intend");
/// assert_eq!(inj.faults.drops, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Injected-fault counters.
    pub faults: FaultCounts,
    /// Recovery-action counters.
    pub recovery: RecoveryCounts,
}

impl FaultInjector {
    /// Builds an injector for `plan`; the RNG stream is seeded from
    /// [`FaultPlan::seed`].
    ///
    /// # Panics
    ///
    /// Panics if the plan is malformed — see [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        let rng = SimRng::seed_from(plan.seed);
        FaultInjector {
            plan,
            rng,
            faults: FaultCounts::default(),
            recovery: RecoveryCounts::default(),
        }
    }

    /// An injector for the empty plan.
    pub fn inert() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// Whether this injector can inject anything. When `false`, callers
    /// must bypass it entirely (the fast path that preserves byte
    /// identity with un-injected builds).
    pub fn active(&self) -> bool {
        !self.plan.is_inert()
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The scheduled crashes.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.plan.crashes
    }

    /// The configured lease duration.
    pub fn lease(&self) -> Cycles {
        self.plan.lease
    }

    /// The configured retry/backoff schedule.
    pub fn retry(&self) -> RetryPolicy {
        self.plan.retry
    }

    /// If a send from `src` to `dst` at `now` hits a cut or flapped-down
    /// link, returns when the blocking window (or down span) ends.
    /// Consumes no randomness.
    pub fn link_release(&self, now: Cycles, src: u16, dst: u16) -> Option<Cycles> {
        let mut release: Option<Cycles> = None;
        let mut hold = |r: Cycles| {
            release = Some(release.map_or(r, |cur| cur.max(r)));
        };
        for c in &self.plan.link_cuts {
            if c.src == src && c.dst == dst && now >= c.from && now < c.until {
                hold(c.until);
            }
        }
        for f in &self.plan.link_flaps {
            if f.src == src && f.dst == dst && now >= f.from && now < f.until {
                if let Some(r) = f.release_at(self.plan.seed, now) {
                    hold(r.min(f.until));
                }
            }
        }
        release
    }

    /// Latency multiplier for a message from `src` to `dst` at `now`:
    /// the largest active gray-node or gray-link factor, or 1 when none
    /// applies. Consumes no randomness.
    pub fn link_slow_factor(&self, now: Cycles, src: u16, dst: u16) -> u64 {
        let mut f = 1u64;
        for s in &self.plan.slow_nodes {
            if (s.node == src || s.node == dst) && now >= s.from && now < s.until {
                f = f.max(s.factor);
            }
        }
        for s in &self.plan.slow_links {
            if s.src == src && s.dst == dst && now >= s.from && now < s.until {
                f = f.max(s.factor);
            }
        }
        f
    }

    /// The gray-node factor alone for `node` at `now` (1 when not gray).
    /// Used by the membership layer to pace a slow node's lease renewals.
    pub fn node_slow_factor(&self, now: Cycles, node: u16) -> u64 {
        self.plan
            .slow_nodes
            .iter()
            .filter(|s| s.node == node && now >= s.from && now < s.until)
            .map(|s| s.factor)
            .fold(1, u64::max)
    }

    /// Whether `node` can currently reach an outbound majority of a
    /// cluster of `nodes` (itself included). The membership layer treats
    /// a minority-side node's lease renewals as lost.
    pub fn node_reaches_majority(&self, now: Cycles, node: u16, nodes: usize) -> bool {
        let mut reachable = 1usize; // itself
        for peer in 0..nodes as u16 {
            if peer != node && self.link_release(now, node, peer).is_none() {
                reachable += 1;
            }
        }
        reachable * 2 > nodes
    }

    /// (windows that became active, windows that healed) as of `now`,
    /// across all link cuts and flaps — the window-level counts behind
    /// the `nemesis` stats block (per-message counts live in
    /// [`FaultCounts::link_cuts`]). A window counts as cut once a send
    /// actually hit it, and as healed once its end time has passed —
    /// whether or not any later send probed that pair again (the lazy
    /// `LinkHealed` trace event still needs traffic to fire).
    pub fn link_window_counts(&self, now: Cycles) -> (u64, u64) {
        let mut cut = 0u64;
        let mut healed = 0u64;
        for c in &self.plan.link_cuts {
            if c.announced {
                cut += 1;
                if c.healed || now >= c.until {
                    healed += 1;
                }
            }
        }
        for f in &self.plan.link_flaps {
            if f.announced {
                cut += 1;
                if f.healed || now >= f.until {
                    healed += 1;
                }
            }
        }
        (cut, healed)
    }

    /// Flags window open/close transitions for the (src, dst) pair at
    /// `now` into `out`, exactly once per window, so the fabric can emit
    /// `LinkCut`/`LinkHealed` trace events.
    fn note_link_transitions(&mut self, now: Cycles, src: u16, dst: u16, out: &mut SendFaults) {
        for c in &mut self.plan.link_cuts {
            if c.src != src || c.dst != dst {
                continue;
            }
            if !c.announced && now >= c.from && now < c.until {
                c.announced = true;
                out.cut_links.push((src, dst));
            }
            if c.announced && !c.healed && now >= c.until {
                c.healed = true;
                out.healed_links.push((src, dst));
            }
        }
        for f in &mut self.plan.link_flaps {
            if f.src != src || f.dst != dst {
                continue;
            }
            if !f.announced && now >= f.from && now < f.until {
                f.announced = true;
                out.cut_links.push((src, dst));
            }
            if f.announced && !f.healed && now >= f.until {
                f.healed = true;
                out.healed_links.push((src, dst));
            }
        }
    }

    /// Injects faults into one `verb` message sent from `src` to `dst` at
    /// `now`. Returns the extra delay of each delivered copy (possibly
    /// none, possibly two).
    pub fn on_send(&mut self, now: Cycles, verb: Verb, src: u16, dst: u16) -> SendFaults {
        let mut out = SendFaults::default();
        let mut link_hold = Cycles::ZERO;
        if self.plan.has_link_faults() {
            let release = self.link_release(now, src, dst);
            self.note_link_transitions(now, src, dst, &mut out);
            if let Some(release) = release {
                self.faults.link_cuts += 1;
                out.injected.push(InjectedFault::LinkCut { verb });
                match class_of(verb) {
                    // The message is really gone; the commit-handshake
                    // timeout machinery recovers end-to-end.
                    FaultClass::Lossy => return out,
                    // RC hardware retransmits until the link heals, so
                    // the loss surfaces as hold-until-release latency.
                    FaultClass::Retransmit => link_hold = release - now,
                }
            }
        }
        let vf = self.plan.verbs[verb.index()];
        let mut scheduled = false;
        for sd in &mut self.plan.scheduled_drops {
            if !sd.fired && sd.verb == verb && now >= sd.after {
                sd.fired = true;
                scheduled = true;
                break;
            }
        }
        match class_of(verb) {
            FaultClass::Lossy => {
                if scheduled || (vf.drop_p > 0.0 && self.rng.chance(vf.drop_p)) {
                    self.faults.drops += 1;
                    out.injected.push(InjectedFault::Drop { verb });
                    return out;
                }
                let mut extra = Cycles::ZERO;
                if vf.delay_p > 0.0 && self.rng.chance(vf.delay_p) {
                    extra += vf.delay;
                    self.faults.delays += 1;
                    out.injected.push(InjectedFault::Delay { verb });
                }
                if vf.reorder_p > 0.0 && self.rng.chance(vf.reorder_p) {
                    extra += Cycles::new(self.rng.below(vf.reorder_window.get().max(1)));
                    self.faults.reorders += 1;
                    out.injected.push(InjectedFault::Reorder { verb });
                }
                out.copies.push(extra);
                if vf.dup_p > 0.0 && self.rng.chance(vf.dup_p) {
                    // The duplicate trails the original by a jitter drawn
                    // from the reorder window (or a small default skew).
                    let skew = vf.reorder_window.get().max(64);
                    let dup_extra = extra + Cycles::new(1 + self.rng.below(skew));
                    out.copies.push(dup_extra);
                    self.faults.dups += 1;
                    out.injected.push(InjectedFault::Duplicate { verb });
                }
            }
            FaultClass::Retransmit => {
                let mut extra = link_hold;
                let mut attempt = 0u32;
                if scheduled {
                    extra += self.plan.retry.step(attempt);
                    attempt += 1;
                    self.faults.drops += 1;
                    self.recovery.timeout_retries += 1;
                    out.injected.push(InjectedFault::Drop { verb });
                    out.recovered.push(RecoveryKind::TimeoutRetry);
                }
                while vf.drop_p > 0.0 && attempt < MAX_RETRANSMIT && self.rng.chance(vf.drop_p) {
                    extra += self.plan.retry.step(attempt);
                    attempt += 1;
                    self.faults.drops += 1;
                    self.recovery.timeout_retries += 1;
                    out.injected.push(InjectedFault::Drop { verb });
                    out.recovered.push(RecoveryKind::TimeoutRetry);
                }
                if vf.delay_p > 0.0 && self.rng.chance(vf.delay_p) {
                    extra += vf.delay;
                    self.faults.delays += 1;
                    out.injected.push(InjectedFault::Delay { verb });
                }
                out.copies.push(extra);
            }
        }
        out
    }

    /// If an arrival at node `dst` lands inside a stall window, returns
    /// the window end the message is held until (the caller clamps the
    /// delivery time). Consumes no randomness.
    pub fn stall_release(&mut self, dst: u16, arrival: Cycles) -> Option<Cycles> {
        let held = self
            .plan
            .nic_stalls
            .iter()
            .filter(|s| s.node == dst && arrival >= s.from && arrival < s.until)
            .map(|s| s.until)
            .max();
        if held.is_some() {
            self.faults.nic_stalls += 1;
        }
        held
    }

    /// Samples whether a replica persist at `_now` fails. Consumes
    /// randomness only when persist failures are configured.
    pub fn persist_fails(&mut self, _now: Cycles) -> bool {
        let p = self.plan.persist_fail_p;
        if p > 0.0 && self.rng.chance(p) {
            self.faults.persist_fails += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert_and_from_loss_zero_matches() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::from_loss(0.0, 9).is_inert());
        assert!(!FaultPlan::from_loss(0.01, 9).is_inert());
        assert!(!FaultInjector::inert().active());
    }

    #[test]
    fn from_loss_targets_only_lossy_verbs() {
        let plan = FaultPlan::from_loss(0.2, 1);
        for verb in Verb::ALL {
            let expect = if class_of(verb) == FaultClass::Lossy {
                0.2
            } else {
                0.0
            };
            assert_eq!(plan.verbs[verb.index()].drop_p, expect, "{verb:?}");
        }
    }

    #[test]
    fn lossy_drop_loses_the_message() {
        let mut inj = FaultInjector::new(FaultPlan::none().drop_verb(Verb::Ack, 1.0));
        for _ in 0..10 {
            assert!(inj.on_send(Cycles::ZERO, Verb::Ack, 0, 1).copies.is_empty());
        }
        assert_eq!(inj.faults.drops, 10);
    }

    #[test]
    fn duplication_yields_two_ordered_copies() {
        let mut inj = FaultInjector::new(FaultPlan::none().dup_verb(Verb::Intend, 1.0));
        let out = inj.on_send(Cycles::ZERO, Verb::Intend, 0, 1);
        assert_eq!(out.copies.len(), 2);
        assert!(out.copies[1] > out.copies[0], "duplicate trails original");
        assert_eq!(inj.faults.dups, 1);
    }

    #[test]
    fn retransmit_class_always_delivers_exactly_once() {
        let plan = FaultPlan::none()
            .drop_verb(Verb::Validation, 0.9)
            .dup_verb(Verb::Validation, 1.0); // ignored for this class
        let mut inj = FaultInjector::new(plan);
        let mut delayed = 0;
        for _ in 0..50 {
            let out = inj.on_send(Cycles::ZERO, Verb::Validation, 0, 1);
            assert_eq!(out.copies.len(), 1, "exactly-once delivery");
            if out.copies[0] > Cycles::ZERO {
                delayed += 1;
            }
        }
        assert!(delayed > 25, "drop_p=0.9 should delay most sends");
        assert_eq!(
            inj.faults.drops as usize,
            inj.recovery.timeout_retries as usize
        );
        assert!(inj.faults.drops > 0);
    }

    #[test]
    fn retry_policy_grows_exponentially_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.step(0), Cycles::new(500));
        assert_eq!(r.step(1), Cycles::new(1_000));
        assert_eq!(r.step(3), Cycles::new(4_000));
        assert_eq!(r.step(10), Cycles::new(16_000), "capped");
        assert_eq!(r.step(100), Cycles::new(16_000), "no shift overflow");
    }

    #[test]
    fn retry_policy_monotone_for_huge_bases() {
        // base = 1<<40 shifted by 32 used to truncate high bits and come
        // back *smaller* than earlier attempts; it must saturate instead.
        let r = RetryPolicy {
            base: Cycles::new(1 << 40),
            cap: Cycles::new(u64::MAX),
        };
        let mut last = Cycles::ZERO;
        for attempt in 0..64 {
            let b = r.step(attempt);
            assert!(b >= last, "attempt {attempt}: {b:?} < {last:?}");
            last = b;
        }
    }

    #[test]
    fn scheduled_drop_fires_exactly_once_without_randomness() {
        let plan = FaultPlan::none().drop_at(Verb::Intend, Cycles::new(100));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.on_send(Cycles::new(50), Verb::Intend, 0, 1)
                .copies
                .len(),
            1,
            "before the trigger time"
        );
        assert!(
            inj.on_send(Cycles::new(100), Verb::Intend, 0, 1)
                .copies
                .is_empty(),
            "first send at/after the trigger is dropped"
        );
        assert_eq!(
            inj.on_send(Cycles::new(101), Verb::Intend, 0, 1)
                .copies
                .len(),
            1,
            "one-shot"
        );
        assert_eq!(inj.faults.drops, 1);
    }

    #[test]
    fn crash_forever_has_no_restart() {
        let plan = FaultPlan::none().crash_forever(2, Cycles::new(1_000));
        assert!(plan.has_crashes());
        assert!(!plan.is_inert());
        assert!(plan.crashes[0].is_forever());
        let timed = FaultPlan::none().crash(1, Cycles::new(10), Cycles::new(20));
        assert_eq!(timed.crashes[0].restart_at, Some(Cycles::new(20)));
        assert!(!timed.crashes[0].is_forever());
    }

    #[test]
    fn stall_windows_hold_arrivals() {
        let plan = FaultPlan::none().nic_stall(2, Cycles::new(100), Cycles::new(300));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.stall_release(2, Cycles::new(150)),
            Some(Cycles::new(300))
        );
        assert_eq!(inj.stall_release(2, Cycles::new(99)), None);
        assert_eq!(
            inj.stall_release(2, Cycles::new(300)),
            None,
            "end exclusive"
        );
        assert_eq!(inj.stall_release(1, Cycles::new(150)), None, "other node");
        assert_eq!(inj.faults.nic_stalls, 1);
    }

    #[test]
    fn persist_failures_sample_only_when_configured() {
        let mut off = FaultInjector::new(FaultPlan::none());
        let before = off.rng.clone();
        assert!(!off.persist_fails(Cycles::ZERO));
        assert_eq!(off.rng, before, "p=0 must not consume randomness");

        let mut on = FaultInjector::new(FaultPlan::none().persist_failures(1.0));
        assert!(on.persist_fails(Cycles::ZERO));
        assert_eq!(on.faults.persist_fails, 1);
    }

    #[test]
    fn identical_plans_replay_identical_schedules() {
        let plan = FaultPlan::none()
            .with_seed(0xC0FFEE)
            .drop_verb(Verb::Intend, 0.3)
            .dup_verb(Verb::Ack, 0.2)
            .delay_verb(Verb::Read, 0.5, Cycles::new(2_000))
            .reorder_verb(Verb::Intend, 0.25, Cycles::new(800));
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..200u64 {
            let verb = Verb::ALL[(i % 16) as usize];
            let (x, y) = (
                a.on_send(Cycles::new(i), verb, 0, 1),
                b.on_send(Cycles::new(i), verb, 0, 1),
            );
            assert_eq!(x.copies, y.copies);
        }
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.recovery, b.recovery);
    }

    #[test]
    fn counts_serialize_to_json() {
        let mut c = FaultCounts::default();
        assert!(c.is_zero());
        c.drops = 3;
        let rendered = c.to_json().render();
        assert!(rendered.contains("\"drops\":3"), "{rendered}");
        let mut r = RecoveryCounts::default();
        assert!(r.is_zero());
        r.lease_expiries = 2;
        assert!(r.to_json().render().contains("\"lease_expiries\":2"));
    }

    #[test]
    fn link_faults_make_the_plan_non_inert() {
        let cut = FaultPlan::none().cut_link(0, 1, Cycles::new(10), Cycles::new(20));
        assert!(!cut.is_inert());
        assert!(cut.has_link_faults());
        let slow = FaultPlan::none().slow_node(2, Cycles::new(10), Cycles::new(20), 4);
        assert!(!slow.is_inert());
        let flap = FaultPlan::none().flap_link(
            0,
            1,
            Cycles::new(0),
            Cycles::new(1_000),
            Cycles::new(100),
            Cycles::new(50),
        );
        assert!(!flap.is_inert());
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_cut_panics() {
        let _ = FaultPlan::none().cut_link(3, 3, Cycles::new(0), Cycles::new(10));
    }

    #[test]
    #[should_panic(expected = "empty or inverted link window")]
    fn inverted_link_window_panics() {
        let _ = FaultPlan::none().cut_link(0, 1, Cycles::new(20), Cycles::new(10));
    }

    #[test]
    #[should_panic(expected = "no down phase")]
    fn always_up_flap_panics() {
        let _ = FaultPlan::none().flap_link(
            0,
            1,
            Cycles::new(0),
            Cycles::new(100),
            Cycles::new(10),
            Cycles::new(10),
        );
    }

    #[test]
    #[should_panic(expected = "must be >= 2")]
    fn unit_slow_factor_panics() {
        let _ = FaultPlan::none().slow_node(0, Cycles::new(0), Cycles::new(10), 1);
    }

    #[test]
    #[should_panic(expected = "restart")]
    fn hand_built_restart_before_crash_fails_at_install() {
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashEvent {
            node: 1,
            at: Cycles::new(100),
            restart_at: Some(Cycles::new(50)),
        });
        let _ = FaultInjector::new(plan);
    }

    #[test]
    #[should_panic(expected = "empty or inverted stall window")]
    fn hand_built_inverted_stall_fails_at_install() {
        let mut plan = FaultPlan::none();
        plan.nic_stalls.push(NicStall {
            node: 0,
            from: Cycles::new(100),
            until: Cycles::new(100),
        });
        let _ = FaultInjector::new(plan);
    }

    #[test]
    fn cut_link_is_directed_and_windowed() {
        let plan = FaultPlan::none().cut_link(0, 1, Cycles::new(100), Cycles::new(200));
        let mut inj = FaultInjector::new(plan);
        // In-window, cut direction: Lossy messages are really lost.
        let out = inj.on_send(Cycles::new(150), Verb::Intend, 0, 1);
        assert!(out.copies.is_empty(), "lossy verb lost on the cut link");
        assert_eq!(inj.faults.link_cuts, 1);
        // Reverse direction flows.
        assert_eq!(
            inj.on_send(Cycles::new(150), Verb::Intend, 1, 0)
                .copies
                .len(),
            1
        );
        // Outside the window flows (end exclusive).
        assert_eq!(
            inj.on_send(Cycles::new(200), Verb::Intend, 0, 1)
                .copies
                .len(),
            1
        );
        assert_eq!(
            inj.on_send(Cycles::new(99), Verb::Intend, 0, 1)
                .copies
                .len(),
            1
        );
        assert_eq!(inj.faults.link_cuts, 1);
    }

    #[test]
    fn cut_link_holds_reliable_verbs_until_the_heal() {
        let plan = FaultPlan::none().cut_link(0, 1, Cycles::new(100), Cycles::new(500));
        let mut inj = FaultInjector::new(plan);
        let out = inj.on_send(Cycles::new(150), Verb::Validation, 0, 1);
        assert_eq!(out.copies.len(), 1, "reliable transport still delivers");
        assert_eq!(
            out.copies[0],
            Cycles::new(350),
            "held until the link heals at 500"
        );
        assert_eq!(inj.faults.link_cuts, 1);
    }

    #[test]
    fn partition_cuts_every_cross_group_pair_both_ways() {
        let plan = FaultPlan::none().partition(&[0, 1], &[2, 3], Cycles::new(0), Cycles::new(100));
        assert_eq!(plan.link_cuts.len(), 8, "2x2 pairs, both directions");
        let inj = FaultInjector::new(plan);
        for (src, dst) in [(0u16, 2u16), (2, 0), (1, 3), (3, 1)] {
            assert!(
                inj.link_release(Cycles::new(50), src, dst).is_some(),
                "{src}->{dst} must be cut"
            );
        }
        for (src, dst) in [(0u16, 1u16), (1, 0), (2, 3), (3, 2)] {
            assert!(
                inj.link_release(Cycles::new(50), src, dst).is_none(),
                "{src}->{dst} is intra-group and must flow"
            );
        }
    }

    #[test]
    fn flap_blocks_deterministically_with_both_phases() {
        let plan = FaultPlan::none().with_seed(11).flap_link(
            0,
            1,
            Cycles::new(0),
            Cycles::new(10_000),
            Cycles::new(100),
            Cycles::new(60),
        );
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let (mut up, mut down) = (0u32, 0u32);
        for t in 0..10_000u64 {
            let ra = a.link_release(Cycles::new(t), 0, 1);
            assert_eq!(ra, b.link_release(Cycles::new(t), 0, 1), "t={t}");
            match ra {
                None => up += 1,
                Some(r) => {
                    assert!(r > Cycles::new(t), "release must be in the future");
                    assert!(r <= Cycles::new(10_000), "release capped at window end");
                    down += 1;
                }
            }
        }
        assert_eq!(up, 6_000, "60/100 duty cycle up time");
        assert_eq!(down, 4_000, "40/100 duty cycle down time");
    }

    #[test]
    fn slow_factors_pick_the_largest_active_window() {
        let plan = FaultPlan::none()
            .slow_node(1, Cycles::new(0), Cycles::new(100), 4)
            .slow_link(0, 1, Cycles::new(0), Cycles::new(100), 8);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.link_slow_factor(Cycles::new(50), 0, 1), 8);
        assert_eq!(inj.link_slow_factor(Cycles::new(50), 1, 2), 4, "gray node");
        assert_eq!(inj.link_slow_factor(Cycles::new(50), 2, 3), 1);
        assert_eq!(inj.link_slow_factor(Cycles::new(150), 0, 1), 1, "expired");
        assert_eq!(inj.node_slow_factor(Cycles::new(50), 1), 4);
        assert_eq!(inj.node_slow_factor(Cycles::new(50), 0), 1);
    }

    #[test]
    fn isolated_node_loses_its_outbound_majority() {
        let plan = FaultPlan::none().isolate_node(2, 4, Cycles::new(100), Cycles::new(200));
        let inj = FaultInjector::new(plan);
        assert!(!inj.node_reaches_majority(Cycles::new(150), 2, 4));
        assert!(
            inj.node_reaches_majority(Cycles::new(150), 0, 4),
            "majority side"
        );
        assert!(
            inj.node_reaches_majority(Cycles::new(250), 2, 4),
            "after heal"
        );
    }

    #[test]
    fn even_split_strands_both_sides() {
        let plan = FaultPlan::none().partition(&[0, 1], &[2, 3], Cycles::new(0), Cycles::new(100));
        let inj = FaultInjector::new(plan);
        for n in 0..4 {
            assert!(
                !inj.node_reaches_majority(Cycles::new(50), n, 4),
                "node {n}: a 2/2 split leaves nobody with a majority"
            );
        }
    }

    #[test]
    fn link_windows_announce_and_heal_exactly_once() {
        let plan = FaultPlan::none().cut_link(0, 1, Cycles::new(100), Cycles::new(200));
        let mut inj = FaultInjector::new(plan);
        assert!(inj
            .on_send(Cycles::new(50), Verb::Intend, 0, 1)
            .cut_links
            .is_empty());
        let first = inj.on_send(Cycles::new(120), Verb::Intend, 0, 1);
        assert_eq!(first.cut_links, vec![(0, 1)], "window opens once");
        assert!(inj
            .on_send(Cycles::new(130), Verb::Intend, 0, 1)
            .cut_links
            .is_empty());
        let healed = inj.on_send(Cycles::new(250), Verb::Intend, 0, 1);
        assert_eq!(healed.healed_links, vec![(0, 1)], "window heals once");
        assert!(inj
            .on_send(Cycles::new(260), Verb::Intend, 0, 1)
            .healed_links
            .is_empty());
        assert_eq!(inj.link_window_counts(Cycles::new(260)), (1, 1));
    }

    #[test]
    fn window_counts_heal_on_time_not_traffic() {
        let plan = FaultPlan::none().cut_link(0, 1, Cycles::new(100), Cycles::new(200));
        let mut inj = FaultInjector::new(plan);
        inj.on_send(Cycles::new(120), Verb::Intend, 0, 1);
        assert_eq!(
            inj.link_window_counts(Cycles::new(150)),
            (1, 0),
            "mid-window: cut, not healed"
        );
        assert_eq!(
            inj.link_window_counts(Cycles::new(300)),
            (1, 1),
            "past the end the window is healed even with no further sends"
        );
    }
}
