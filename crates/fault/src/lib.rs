//! # hades-fault — deterministic fault injection and recovery accounting
//!
//! The paper's Section V-A outlines fault tolerance (replica writes,
//! durable persists before Ack, two-phase commit turning lost messages
//! into clean aborts) without evaluating it. This crate provides the
//! machinery to *create* those failure scenarios reproducibly: a
//! [`FaultPlan`] describes which faults to inject (per-verb message
//! drop/duplication/delay/reorder, node crash/restart windows, NIC stall
//! windows, replica-persist failures, exact-cycle scheduled drops), and a
//! [`FaultInjector`] samples the plan from its own seeded RNG stream so
//! the surrounding simulation's randomness is never perturbed.
//!
//! Determinism contract:
//!
//! * An **inert** plan ([`FaultPlan::is_inert`]) consumes no randomness
//!   and injects nothing — runs are byte-identical to an injector-free
//!   build.
//! * A non-inert plan owns a private `xoshiro256**` stream seeded from
//!   [`FaultPlan::seed`]; the same config + seed + plan replays the exact
//!   same fault schedule.
//!
//! Verbs fall into two classes (see [`FaultClass`]):
//!
//! * **Lossy** verbs (Intend, Ack, LockResp, ValidateResp,
//!   ReplicaPrepare, ReplicaAck) are commit-handshake messages whose loss
//!   the protocol engines recover from end-to-end (commit timeouts,
//!   abort, retry). A drop really removes the message; duplication
//!   delivers two copies (engines deduplicate by sequence id).
//! * **Retransmit** verbs (everything else: reads, validations, clears,
//!   squashes, writes, unlocks) ride the reliable transport — RDMA RC
//!   retransmits them in hardware. A "drop" therefore surfaces as extra
//!   latency: the injector charges one [`RetryPolicy`] backoff step per
//!   lost attempt and always delivers exactly one copy, which keeps
//!   non-idempotent messages (e.g. RMW write-backs) exactly-once.

#![warn(missing_docs)]

use hades_sim::backoff::BackoffPolicy;
use hades_sim::rng::SimRng;
use hades_sim::time::Cycles;
use hades_telemetry::event::Verb;
use hades_telemetry::json::Json;

pub use hades_telemetry::event::{InjectedFault, RecoveryKind};

/// Maximum in-injector retransmit attempts charged for one message on the
/// reliable (Retransmit-class) path before the message goes through
/// regardless.
pub const MAX_RETRANSMIT: u32 = 8;

/// Default coordinator/participant lease (320 µs at 2 GHz): a participant
/// that granted a Locking Buffer releases it when the lease expires
/// without a Validation or Clear, converting a crashed coordinator's
/// partial locks into a clean squash.
pub const DEFAULT_LEASE: Cycles = Cycles::new(640_000);

/// How a verb's faults are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Loss is real: the message disappears and the protocol's own
    /// timeout/abort machinery recovers.
    Lossy,
    /// Loss becomes hardware retransmission latency; delivery is
    /// exactly-once.
    Retransmit,
}

/// The fault class of `verb`.
pub const fn class_of(verb: Verb) -> FaultClass {
    match verb {
        Verb::Intend
        | Verb::Ack
        | Verb::LockResp
        | Verb::ValidateResp
        | Verb::ReplicaPrepare
        | Verb::ReplicaAck => FaultClass::Lossy,
        _ => FaultClass::Retransmit,
    }
}

/// Per-verb fault probabilities and magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerbFaults {
    /// Probability a message is dropped (Lossy class) or charged a
    /// retransmit step (Retransmit class).
    pub drop_p: f64,
    /// Probability a Lossy-class message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is delayed by [`VerbFaults::delay`].
    pub delay_p: f64,
    /// Extra latency applied on a sampled delay.
    pub delay: Cycles,
    /// Probability a message receives uniform jitter in
    /// `[0, reorder_window)`, letting later sends overtake it.
    pub reorder_p: f64,
    /// Jitter window for reordering (and for spacing duplicate copies).
    pub reorder_window: Cycles,
}

impl VerbFaults {
    /// No faults on this verb.
    pub const NONE: VerbFaults = VerbFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        delay_p: 0.0,
        delay: Cycles::ZERO,
        reorder_p: 0.0,
        reorder_window: Cycles::ZERO,
    };

    /// Whether every probability is zero.
    pub fn is_inert(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0 && self.reorder_p == 0.0
    }
}

impl Default for VerbFaults {
    fn default() -> Self {
        VerbFaults::NONE
    }
}

/// A scheduled node crash: the node loses all in-flight transaction state
/// at `at` and — unless the crash is permanent — comes back (replaying
/// durable replica state) at `restart_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing node.
    pub node: u16,
    /// Crash time.
    pub at: Cycles,
    /// Restart time (must be after `at`); `None` for a permanent crash
    /// ([`FaultPlan::crash_forever`]) — the node never comes back and
    /// recovery relies on the membership/failover layer.
    pub restart_at: Option<Cycles>,
}

impl CrashEvent {
    /// Whether this crash is permanent (no scheduled restart).
    pub fn is_forever(&self) -> bool {
        self.restart_at.is_none()
    }
}

/// A NIC stall window: messages arriving at `node` inside `[from, until)`
/// are held and delivered at `until` (a PCIe/firmware hiccup model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicStall {
    /// The stalled node.
    pub node: u16,
    /// Stall window start (inclusive).
    pub from: Cycles,
    /// Stall window end (exclusive); held messages deliver here.
    pub until: Cycles,
}

/// A one-shot scheduled drop: the first `verb` message sent at or after
/// `after` is dropped (Lossy class) or charged a retransmit (Retransmit
/// class), deterministically and without consuming randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledDrop {
    /// The targeted verb.
    pub verb: Verb,
    /// Earliest send time the drop applies to.
    pub after: Cycles,
    /// Whether the drop already fired.
    pub fired: bool,
}

/// Exponential backoff schedule for timeout-driven retries: attempt `k`
/// waits `min(base << k, cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry backoff.
    pub base: Cycles,
    /// Backoff ceiling.
    pub cap: Cycles,
}

impl RetryPolicy {
    /// The saturating [`BackoffPolicy`] equivalent of this schedule.
    pub fn policy(&self) -> BackoffPolicy {
        BackoffPolicy::exponential(self.base, self.cap)
    }

    /// The backoff before retry `attempt` (0-based). Delegates to the
    /// shared [`BackoffPolicy`], which saturates on value overflow
    /// (`checked_shl` only guards the shift amount, so the old inline
    /// arithmetic silently truncated large bases and could shrink the
    /// backoff between attempts).
    pub fn step(&self, attempt: u32) -> Cycles {
        self.policy().step(attempt)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Mirrors RetryParams { backoff_base: 500, backoff_cap: 16_000 }.
        RetryPolicy {
            base: Cycles::new(500),
            cap: Cycles::new(16_000),
        }
    }
}

/// A complete, seed-reproducible fault schedule shared by all three
/// protocol engines.
///
/// # Examples
///
/// ```
/// use hades_fault::FaultPlan;
/// use hades_sim::time::Cycles;
/// use hades_telemetry::event::Verb;
///
/// let plan = FaultPlan::none()
///     .with_seed(7)
///     .drop_verb(Verb::Intend, 0.05)
///     .delay_verb(Verb::Validation, 0.1, Cycles::new(4_000))
///     .crash(1, Cycles::new(500_000), Cycles::new(900_000));
/// assert!(!plan.is_inert());
/// assert!(plan.has_crashes());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Per-verb fault knobs, indexed by [`Verb::index`].
    pub verbs: [VerbFaults; Verb::COUNT],
    /// Scheduled node crashes.
    pub crashes: Vec<CrashEvent>,
    /// NIC stall windows.
    pub nic_stalls: Vec<NicStall>,
    /// Probability a replica persist fails (the replica NACKs and the
    /// coordinator aborts).
    pub persist_fail_p: f64,
    /// One-shot exact-time drops.
    pub scheduled_drops: Vec<ScheduledDrop>,
    /// Lease duration for crash suspicion (see [`DEFAULT_LEASE`]).
    pub lease: Cycles,
    /// Backoff schedule for timeout-driven retries.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty plan: injects nothing, consumes no randomness.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            verbs: [VerbFaults::NONE; Verb::COUNT],
            crashes: Vec::new(),
            nic_stalls: Vec::new(),
            persist_fail_p: 0.0,
            scheduled_drops: Vec::new(),
            lease: DEFAULT_LEASE,
            retry: RetryPolicy::default(),
        }
    }

    /// The legacy commit-message-loss experiment as a plan: probability
    /// `p` of dropping each commit-handshake (Lossy-class) message.
    pub fn from_loss(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of range"
        );
        let mut plan = FaultPlan::none().with_seed(seed);
        if p > 0.0 {
            for verb in Verb::ALL {
                if class_of(verb) == FaultClass::Lossy {
                    plan.verbs[verb.index()].drop_p = p;
                }
            }
        }
        plan
    }

    /// Replaces the injector seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drops `verb` messages with probability `p`.
    pub fn drop_verb(mut self, verb: Verb, p: f64) -> Self {
        self.verbs[verb.index()].drop_p = p;
        self
    }

    /// Duplicates `verb` messages with probability `p` (Lossy class only;
    /// Retransmit-class delivery stays exactly-once).
    pub fn dup_verb(mut self, verb: Verb, p: f64) -> Self {
        self.verbs[verb.index()].dup_p = p;
        self
    }

    /// Delays `verb` messages by `delay` with probability `p`.
    pub fn delay_verb(mut self, verb: Verb, p: f64, delay: Cycles) -> Self {
        let vf = &mut self.verbs[verb.index()];
        vf.delay_p = p;
        vf.delay = delay;
        self
    }

    /// Jitters `verb` messages by up to `window` with probability `p`,
    /// allowing reordering against later sends.
    pub fn reorder_verb(mut self, verb: Verb, p: f64, window: Cycles) -> Self {
        let vf = &mut self.verbs[verb.index()];
        vf.reorder_p = p;
        vf.reorder_window = window;
        self
    }

    /// Crashes `node` at `at`, restarting it at `restart_at`.
    ///
    /// # Panics
    ///
    /// Panics if `restart_at <= at`.
    pub fn crash(mut self, node: u16, at: Cycles, restart_at: Cycles) -> Self {
        assert!(restart_at > at, "restart must come after the crash");
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_at: Some(restart_at),
        });
        self
    }

    /// Crashes `node` at `at` permanently: no restart is ever scheduled.
    /// Recovery (backup promotion, in-flight commit resolution) is the
    /// membership layer's job — see `MembershipParams`.
    pub fn crash_forever(mut self, node: u16, at: Cycles) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_at: None,
        });
        self
    }

    /// Stalls `node`'s NIC for arrivals inside `[from, until)`.
    pub fn nic_stall(mut self, node: u16, from: Cycles, until: Cycles) -> Self {
        assert!(until > from, "empty stall window");
        self.nic_stalls.push(NicStall { node, from, until });
        self
    }

    /// Fails replica persists with probability `p`.
    pub fn persist_failures(mut self, p: f64) -> Self {
        self.persist_fail_p = p;
        self
    }

    /// Schedules a one-shot drop of the first `verb` sent at or after
    /// `after`.
    pub fn drop_at(mut self, verb: Verb, after: Cycles) -> Self {
        self.scheduled_drops.push(ScheduledDrop {
            verb,
            after,
            fired: false,
        });
        self
    }

    /// Replaces the lease duration.
    pub fn with_lease(mut self, lease: Cycles) -> Self {
        self.lease = lease;
        self
    }

    /// Whether the plan injects nothing at all (and so must leave runs
    /// byte-identical to an un-injected build).
    pub fn is_inert(&self) -> bool {
        self.verbs.iter().all(VerbFaults::is_inert)
            && self.crashes.is_empty()
            && self.nic_stalls.is_empty()
            && self.persist_fail_p == 0.0
            && self.scheduled_drops.is_empty()
    }

    /// Whether any node crash is scheduled.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages dropped (both classes; Retransmit-class drops were
    /// recovered by hardware retransmission).
    pub drops: u64,
    /// Messages delivered twice.
    pub dups: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Messages jittered for reordering.
    pub reorders: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Node restarts.
    pub restarts: u64,
    /// Messages held by a NIC stall window.
    pub nic_stalls: u64,
    /// Replica persists that failed.
    pub persist_fails: u64,
}

impl FaultCounts {
    /// Whether nothing was injected.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounts::default()
    }

    /// JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("drops", Json::UInt(self.drops))
            .field("dups", Json::UInt(self.dups))
            .field("delays", Json::UInt(self.delays))
            .field("reorders", Json::UInt(self.reorders))
            .field("crashes", Json::UInt(self.crashes))
            .field("restarts", Json::UInt(self.restarts))
            .field("nic_stalls", Json::UInt(self.nic_stalls))
            .field("persist_fails", Json::UInt(self.persist_fails))
            .build()
    }
}

/// Counts of recovery actions the protocol engines took in response to
/// injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Timeout-driven retries/aborts (lost handshake messages recovered
    /// by the commit-timeout path, plus hardware retransmissions).
    pub timeout_retries: u64,
    /// Participant leases that expired and released a Locking Buffer
    /// held on behalf of a suspected-crashed coordinator.
    pub lease_expiries: u64,
    /// Replica log entries replayed on node restart.
    pub replica_replays: u64,
}

impl RecoveryCounts {
    /// Whether no recovery action was taken.
    pub fn is_zero(&self) -> bool {
        *self == RecoveryCounts::default()
    }

    /// JSON object with one field per counter.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("timeout_retries", Json::UInt(self.timeout_retries))
            .field("lease_expiries", Json::UInt(self.lease_expiries))
            .field("replica_replays", Json::UInt(self.replica_replays))
            .build()
    }
}

/// The outcome of injecting faults into one message send.
#[derive(Debug, Clone, Default)]
pub struct SendFaults {
    /// Extra delay of each delivered copy (empty = message lost; two
    /// entries = duplicated).
    pub copies: Vec<Cycles>,
    /// Faults injected into this send, for tracing.
    pub injected: Vec<InjectedFault>,
    /// Recovery actions implied by this send (hardware retransmissions),
    /// for tracing.
    pub recovered: Vec<RecoveryKind>,
}

/// Samples a [`FaultPlan`] against live traffic, from a private RNG
/// stream, and accumulates fault/recovery counters.
///
/// # Examples
///
/// ```
/// use hades_fault::{FaultInjector, FaultPlan};
/// use hades_sim::time::Cycles;
/// use hades_telemetry::event::Verb;
///
/// let plan = FaultPlan::none().with_seed(3).drop_verb(Verb::Intend, 1.0);
/// let mut inj = FaultInjector::new(plan);
/// let out = inj.on_send(Cycles::ZERO, Verb::Intend);
/// assert!(out.copies.is_empty(), "drop_p=1 loses every Intend");
/// assert_eq!(inj.faults.drops, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Injected-fault counters.
    pub faults: FaultCounts,
    /// Recovery-action counters.
    pub recovery: RecoveryCounts,
}

impl FaultInjector {
    /// Builds an injector for `plan`; the RNG stream is seeded from
    /// [`FaultPlan::seed`].
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::seed_from(plan.seed);
        FaultInjector {
            plan,
            rng,
            faults: FaultCounts::default(),
            recovery: RecoveryCounts::default(),
        }
    }

    /// An injector for the empty plan.
    pub fn inert() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// Whether this injector can inject anything. When `false`, callers
    /// must bypass it entirely (the fast path that preserves byte
    /// identity with un-injected builds).
    pub fn active(&self) -> bool {
        !self.plan.is_inert()
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The scheduled crashes.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.plan.crashes
    }

    /// The configured lease duration.
    pub fn lease(&self) -> Cycles {
        self.plan.lease
    }

    /// The configured retry/backoff schedule.
    pub fn retry(&self) -> RetryPolicy {
        self.plan.retry
    }

    /// Injects faults into one `verb` message sent at `now`. Returns the
    /// extra delay of each delivered copy (possibly none, possibly two).
    pub fn on_send(&mut self, now: Cycles, verb: Verb) -> SendFaults {
        let mut out = SendFaults::default();
        let vf = self.plan.verbs[verb.index()];
        let mut scheduled = false;
        for sd in &mut self.plan.scheduled_drops {
            if !sd.fired && sd.verb == verb && now >= sd.after {
                sd.fired = true;
                scheduled = true;
                break;
            }
        }
        match class_of(verb) {
            FaultClass::Lossy => {
                if scheduled || (vf.drop_p > 0.0 && self.rng.chance(vf.drop_p)) {
                    self.faults.drops += 1;
                    out.injected.push(InjectedFault::Drop { verb });
                    return out;
                }
                let mut extra = Cycles::ZERO;
                if vf.delay_p > 0.0 && self.rng.chance(vf.delay_p) {
                    extra += vf.delay;
                    self.faults.delays += 1;
                    out.injected.push(InjectedFault::Delay { verb });
                }
                if vf.reorder_p > 0.0 && self.rng.chance(vf.reorder_p) {
                    extra += Cycles::new(self.rng.below(vf.reorder_window.get().max(1)));
                    self.faults.reorders += 1;
                    out.injected.push(InjectedFault::Reorder { verb });
                }
                out.copies.push(extra);
                if vf.dup_p > 0.0 && self.rng.chance(vf.dup_p) {
                    // The duplicate trails the original by a jitter drawn
                    // from the reorder window (or a small default skew).
                    let skew = vf.reorder_window.get().max(64);
                    let dup_extra = extra + Cycles::new(1 + self.rng.below(skew));
                    out.copies.push(dup_extra);
                    self.faults.dups += 1;
                    out.injected.push(InjectedFault::Duplicate { verb });
                }
            }
            FaultClass::Retransmit => {
                let mut extra = Cycles::ZERO;
                let mut attempt = 0u32;
                if scheduled {
                    extra += self.plan.retry.step(attempt);
                    attempt += 1;
                    self.faults.drops += 1;
                    self.recovery.timeout_retries += 1;
                    out.injected.push(InjectedFault::Drop { verb });
                    out.recovered.push(RecoveryKind::TimeoutRetry);
                }
                while vf.drop_p > 0.0 && attempt < MAX_RETRANSMIT && self.rng.chance(vf.drop_p) {
                    extra += self.plan.retry.step(attempt);
                    attempt += 1;
                    self.faults.drops += 1;
                    self.recovery.timeout_retries += 1;
                    out.injected.push(InjectedFault::Drop { verb });
                    out.recovered.push(RecoveryKind::TimeoutRetry);
                }
                if vf.delay_p > 0.0 && self.rng.chance(vf.delay_p) {
                    extra += vf.delay;
                    self.faults.delays += 1;
                    out.injected.push(InjectedFault::Delay { verb });
                }
                out.copies.push(extra);
            }
        }
        out
    }

    /// If an arrival at node `dst` lands inside a stall window, returns
    /// the window end the message is held until (the caller clamps the
    /// delivery time). Consumes no randomness.
    pub fn stall_release(&mut self, dst: u16, arrival: Cycles) -> Option<Cycles> {
        let held = self
            .plan
            .nic_stalls
            .iter()
            .filter(|s| s.node == dst && arrival >= s.from && arrival < s.until)
            .map(|s| s.until)
            .max();
        if held.is_some() {
            self.faults.nic_stalls += 1;
        }
        held
    }

    /// Samples whether a replica persist at `_now` fails. Consumes
    /// randomness only when persist failures are configured.
    pub fn persist_fails(&mut self, _now: Cycles) -> bool {
        let p = self.plan.persist_fail_p;
        if p > 0.0 && self.rng.chance(p) {
            self.faults.persist_fails += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert_and_from_loss_zero_matches() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::from_loss(0.0, 9).is_inert());
        assert!(!FaultPlan::from_loss(0.01, 9).is_inert());
        assert!(!FaultInjector::inert().active());
    }

    #[test]
    fn from_loss_targets_only_lossy_verbs() {
        let plan = FaultPlan::from_loss(0.2, 1);
        for verb in Verb::ALL {
            let expect = if class_of(verb) == FaultClass::Lossy {
                0.2
            } else {
                0.0
            };
            assert_eq!(plan.verbs[verb.index()].drop_p, expect, "{verb:?}");
        }
    }

    #[test]
    fn lossy_drop_loses_the_message() {
        let mut inj = FaultInjector::new(FaultPlan::none().drop_verb(Verb::Ack, 1.0));
        for _ in 0..10 {
            assert!(inj.on_send(Cycles::ZERO, Verb::Ack).copies.is_empty());
        }
        assert_eq!(inj.faults.drops, 10);
    }

    #[test]
    fn duplication_yields_two_ordered_copies() {
        let mut inj = FaultInjector::new(FaultPlan::none().dup_verb(Verb::Intend, 1.0));
        let out = inj.on_send(Cycles::ZERO, Verb::Intend);
        assert_eq!(out.copies.len(), 2);
        assert!(out.copies[1] > out.copies[0], "duplicate trails original");
        assert_eq!(inj.faults.dups, 1);
    }

    #[test]
    fn retransmit_class_always_delivers_exactly_once() {
        let plan = FaultPlan::none()
            .drop_verb(Verb::Validation, 0.9)
            .dup_verb(Verb::Validation, 1.0); // ignored for this class
        let mut inj = FaultInjector::new(plan);
        let mut delayed = 0;
        for _ in 0..50 {
            let out = inj.on_send(Cycles::ZERO, Verb::Validation);
            assert_eq!(out.copies.len(), 1, "exactly-once delivery");
            if out.copies[0] > Cycles::ZERO {
                delayed += 1;
            }
        }
        assert!(delayed > 25, "drop_p=0.9 should delay most sends");
        assert_eq!(
            inj.faults.drops as usize,
            inj.recovery.timeout_retries as usize
        );
        assert!(inj.faults.drops > 0);
    }

    #[test]
    fn retry_policy_grows_exponentially_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.step(0), Cycles::new(500));
        assert_eq!(r.step(1), Cycles::new(1_000));
        assert_eq!(r.step(3), Cycles::new(4_000));
        assert_eq!(r.step(10), Cycles::new(16_000), "capped");
        assert_eq!(r.step(100), Cycles::new(16_000), "no shift overflow");
    }

    #[test]
    fn retry_policy_monotone_for_huge_bases() {
        // base = 1<<40 shifted by 32 used to truncate high bits and come
        // back *smaller* than earlier attempts; it must saturate instead.
        let r = RetryPolicy {
            base: Cycles::new(1 << 40),
            cap: Cycles::new(u64::MAX),
        };
        let mut last = Cycles::ZERO;
        for attempt in 0..64 {
            let b = r.step(attempt);
            assert!(b >= last, "attempt {attempt}: {b:?} < {last:?}");
            last = b;
        }
    }

    #[test]
    fn scheduled_drop_fires_exactly_once_without_randomness() {
        let plan = FaultPlan::none().drop_at(Verb::Intend, Cycles::new(100));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.on_send(Cycles::new(50), Verb::Intend).copies.len(),
            1,
            "before the trigger time"
        );
        assert!(
            inj.on_send(Cycles::new(100), Verb::Intend)
                .copies
                .is_empty(),
            "first send at/after the trigger is dropped"
        );
        assert_eq!(
            inj.on_send(Cycles::new(101), Verb::Intend).copies.len(),
            1,
            "one-shot"
        );
        assert_eq!(inj.faults.drops, 1);
    }

    #[test]
    fn crash_forever_has_no_restart() {
        let plan = FaultPlan::none().crash_forever(2, Cycles::new(1_000));
        assert!(plan.has_crashes());
        assert!(!plan.is_inert());
        assert!(plan.crashes[0].is_forever());
        let timed = FaultPlan::none().crash(1, Cycles::new(10), Cycles::new(20));
        assert_eq!(timed.crashes[0].restart_at, Some(Cycles::new(20)));
        assert!(!timed.crashes[0].is_forever());
    }

    #[test]
    fn stall_windows_hold_arrivals() {
        let plan = FaultPlan::none().nic_stall(2, Cycles::new(100), Cycles::new(300));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.stall_release(2, Cycles::new(150)),
            Some(Cycles::new(300))
        );
        assert_eq!(inj.stall_release(2, Cycles::new(99)), None);
        assert_eq!(
            inj.stall_release(2, Cycles::new(300)),
            None,
            "end exclusive"
        );
        assert_eq!(inj.stall_release(1, Cycles::new(150)), None, "other node");
        assert_eq!(inj.faults.nic_stalls, 1);
    }

    #[test]
    fn persist_failures_sample_only_when_configured() {
        let mut off = FaultInjector::new(FaultPlan::none());
        let before = off.rng.clone();
        assert!(!off.persist_fails(Cycles::ZERO));
        assert_eq!(off.rng, before, "p=0 must not consume randomness");

        let mut on = FaultInjector::new(FaultPlan::none().persist_failures(1.0));
        assert!(on.persist_fails(Cycles::ZERO));
        assert_eq!(on.faults.persist_fails, 1);
    }

    #[test]
    fn identical_plans_replay_identical_schedules() {
        let plan = FaultPlan::none()
            .with_seed(0xC0FFEE)
            .drop_verb(Verb::Intend, 0.3)
            .dup_verb(Verb::Ack, 0.2)
            .delay_verb(Verb::Read, 0.5, Cycles::new(2_000))
            .reorder_verb(Verb::Intend, 0.25, Cycles::new(800));
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..200u64 {
            let verb = Verb::ALL[(i % 16) as usize];
            let (x, y) = (
                a.on_send(Cycles::new(i), verb),
                b.on_send(Cycles::new(i), verb),
            );
            assert_eq!(x.copies, y.copies);
        }
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.recovery, b.recovery);
    }

    #[test]
    fn counts_serialize_to_json() {
        let mut c = FaultCounts::default();
        assert!(c.is_zero());
        c.drops = 3;
        let rendered = c.to_json().render();
        assert!(rendered.contains("\"drops\":3"), "{rendered}");
        let mut r = RecoveryCounts::default();
        assert!(r.is_zero());
        r.lease_expiries = 2;
        assert!(r.to_json().render().contains("\"lease_expiries\":2"));
    }
}
